#include "activetime/tree.hpp"

#include <algorithm>
#include <map>
#include <utility>

#include "util/check.hpp"

namespace nat::at {

namespace {

/// Subtracts the (sorted, disjoint) child intervals from `outer`,
/// returning the leftover ranges.
std::vector<Interval> subtract_children(const Interval& outer,
                                        std::vector<Interval> children) {
  std::sort(children.begin(), children.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> owned;
  Time cursor = outer.lo;
  for (const Interval& c : children) {
    NAT_CHECK_MSG(c.lo >= cursor && c.hi <= outer.hi,
                  "child interval " << c << " escapes parent " << outer);
    if (c.lo > cursor) owned.push_back(Interval{cursor, c.lo});
    cursor = c.hi;
  }
  if (cursor < outer.hi) owned.push_back(Interval{cursor, outer.hi});
  return owned;
}

}  // namespace

LaminarForest LaminarForest::build(const Instance& instance) {
  instance.validate();
  NAT_CHECK_MSG(instance.is_laminar(), "instance is not laminar");

  LaminarForest f;
  f.g_ = instance.g;
  f.jobs_ = instance.jobs;
  f.job_node_.assign(f.jobs_.size(), -1);

  // Distinct windows, sorted so that ancestors precede descendants:
  // by lo ascending, then hi descending.
  std::map<std::pair<Time, Time>, int> window_node;
  std::vector<Interval> windows;
  for (const Job& job : f.jobs_) {
    auto key = std::make_pair(job.release, job.deadline);
    if (window_node.emplace(key, -1).second) {
      windows.push_back(job.window());
    }
  }
  std::sort(windows.begin(), windows.end(),
            [](const Interval& a, const Interval& b) {
              return a.lo != b.lo ? a.lo < b.lo : a.hi > b.hi;
            });

  // Stack-based nesting: the stack holds the chain of currently-open
  // ancestors. Laminarity guarantees each window either nests in the
  // top of the stack or is disjoint from it.
  std::vector<int> stack;
  for (const Interval& w : windows) {
    while (!stack.empty() && !w.inside(f.nodes_[stack.back()].interval)) {
      NAT_CHECK_MSG(w.disjoint(f.nodes_[stack.back()].interval),
                    "windows cross: " << w << " vs "
                                      << f.nodes_[stack.back()].interval);
      stack.pop_back();
    }
    TreeNode n;
    n.interval = w;
    n.parent = stack.empty() ? -1 : stack.back();
    int id = static_cast<int>(f.nodes_.size());
    f.nodes_.push_back(std::move(n));
    if (f.nodes_[id].parent >= 0) {
      f.nodes_[f.nodes_[id].parent].children.push_back(id);
    } else {
      f.roots_.push_back(id);
    }
    stack.push_back(id);
    window_node[{w.lo, w.hi}] = id;
  }

  for (std::size_t j = 0; j < f.jobs_.size(); ++j) {
    int node = window_node.at({f.jobs_[j].release, f.jobs_[j].deadline});
    f.job_node_[j] = node;
    f.nodes_[node].jobs.push_back(static_cast<int>(j));
  }

  // Owned (exclusive) regions.
  for (TreeNode& n : f.nodes_) {
    std::vector<Interval> child_ivs;
    for (int c : n.children) child_ivs.push_back(f.nodes_[c].interval);
    n.owned = subtract_children(n.interval, std::move(child_ivs));
  }

  f.rebuild_indices();
  return f;
}

int LaminarForest::add_node(TreeNode n) {
  nodes_.push_back(std::move(n));
  return static_cast<int>(nodes_.size()) - 1;
}

void LaminarForest::canonicalize() {
  // --- Step 1: binarize. A node with t > 2 children gets a left-deep
  // chain of virtual nodes grouping its children two at a time (in time
  // order). Virtual nodes carry no jobs and own no slots.
  const int original_count = num_nodes();
  for (int i = 0; i < original_count; ++i) {
    if (static_cast<int>(nodes_[i].children.size()) <= 2) continue;
    std::vector<int> kids = nodes_[i].children;
    std::sort(kids.begin(), kids.end(), [this](int a, int b) {
      return nodes_[a].interval.lo < nodes_[b].interval.lo;
    });
    // Fold children left to right: v1 = (c1, c2), v2 = (v1, c3), ...
    // until two subtrees remain under i.
    int acc = kids[0];
    for (std::size_t k = 1; k + 1 < kids.size(); ++k) {
      TreeNode v;
      v.is_virtual = true;
      v.interval = Interval{
          std::min(nodes_[acc].interval.lo, nodes_[kids[k]].interval.lo),
          std::max(nodes_[acc].interval.hi, nodes_[kids[k]].interval.hi)};
      v.children = {acc, kids[k]};
      int vid = add_node(std::move(v));
      nodes_[acc].parent = vid;
      nodes_[kids[k]].parent = vid;
      acc = vid;
    }
    nodes_[i].children = {acc, kids.back()};
    nodes_[acc].parent = i;
    nodes_[kids.back()].parent = i;
  }

  // --- Step 2: rigid leaves. For a leaf whose longest job p* is
  // shorter than L(i), split off a child covering the leaf's first p*
  // slots and shrink that job's window to it.
  const int after_binarize = num_nodes();
  for (int i = 0; i < after_binarize; ++i) {
    if (!nodes_[i].children.empty()) continue;
    NAT_CHECK_MSG(!nodes_[i].jobs.empty(), "leaf without jobs");
    int longest = nodes_[i].jobs.front();
    for (int j : nodes_[i].jobs) {
      if (jobs_[j].processing > jobs_[longest].processing) longest = j;
    }
    const Time pstar = jobs_[longest].processing;
    const Time len = nodes_[i].length();
    NAT_CHECK_MSG(pstar <= len, "leaf shorter than its longest job");
    if (pstar == len) continue;  // already rigid

    const Interval leaf_iv = nodes_[i].interval;
    TreeNode c;
    c.interval = Interval{leaf_iv.lo, leaf_iv.lo + pstar};
    c.parent = i;
    c.owned = {c.interval};
    int cid = add_node(std::move(c));
    nodes_[i].children = {cid};
    nodes_[i].owned = {Interval{leaf_iv.lo + pstar, leaf_iv.hi}};

    // Move the longest job (and every other job sharing its original
    // window that we choose to keep at i — only `longest` moves, per
    // the paper) down to the new rigid leaf.
    jobs_[longest].release = nodes_[cid].interval.lo;
    jobs_[longest].deadline = nodes_[cid].interval.hi;
    auto& leaf_jobs = nodes_[i].jobs;
    leaf_jobs.erase(std::find(leaf_jobs.begin(), leaf_jobs.end(), longest));
    nodes_[cid].jobs.push_back(longest);
    job_node_[longest] = cid;
    // The parent may have lost all jobs if `longest` was its only one;
    // that is fine: rigidity is only required of leaves, and i is now
    // internal. (A job-less internal real node behaves like a virtual
    // node that owns slots.)
  }

  rebuild_indices();
  NAT_DCHECK(is_canonical());
}

void LaminarForest::rebuild_indices() {
  const int m = num_nodes();
  depth_.assign(m, 0);
  tin_.assign(m, -1);
  tout_.assign(m, -1);
  postorder_.clear();
  postorder_.reserve(m);
  roots_.clear();
  for (int i = 0; i < m; ++i) {
    if (nodes_[i].parent < 0) roots_.push_back(i);
  }
  std::sort(roots_.begin(), roots_.end(), [this](int a, int b) {
    return nodes_[a].interval.lo < nodes_[b].interval.lo;
  });
  int clock = 0;
  // Iterative DFS (enter/exit events).
  for (int root : roots_) {
    std::vector<std::pair<int, bool>> work{{root, false}};
    while (!work.empty()) {
      auto [v, exiting] = work.back();
      work.pop_back();
      if (exiting) {
        tout_[v] = clock++;
        postorder_.push_back(v);
        continue;
      }
      tin_[v] = clock++;
      work.emplace_back(v, true);
      for (auto it = nodes_[v].children.rbegin();
           it != nodes_[v].children.rend(); ++it) {
        depth_[*it] = depth_[v] + 1;
        work.emplace_back(*it, false);
      }
    }
  }
}

bool LaminarForest::is_ancestor(int a, int d) const {
  return tin_.at(a) <= tin_.at(d) && tout_.at(d) <= tout_.at(a);
}

std::vector<int> LaminarForest::subtree(int i) const {
  std::vector<int> out;
  std::vector<int> work{i};
  while (!work.empty()) {
    int v = work.back();
    work.pop_back();
    out.push_back(v);
    for (auto it = nodes_[v].children.rbegin();
         it != nodes_[v].children.rend(); ++it) {
      work.push_back(*it);
    }
  }
  return out;
}

void LaminarForest::check_invariants() const {
  for (int i = 0; i < num_nodes(); ++i) {
    const TreeNode& n = nodes_[i];
    for (int c : n.children) {
      NAT_CHECK(nodes_[c].parent == i);
      NAT_CHECK(nodes_[c].interval.inside(n.interval));
    }
    if (n.parent >= 0) {
      const auto& sib = nodes_[n.parent].children;
      NAT_CHECK(std::find(sib.begin(), sib.end(), i) != sib.end());
    }
    for (const Interval& iv : n.owned) {
      NAT_CHECK(!iv.empty());
      NAT_CHECK(iv.inside(n.interval));
    }
    if (!n.is_virtual && n.children.empty()) {
      NAT_CHECK_MSG(!n.jobs.empty(), "non-virtual leaf without jobs");
    }
    for (int j : n.jobs) {
      NAT_CHECK(job_node_.at(j) == i);
      NAT_CHECK(jobs_.at(j).window() == n.interval);
    }
  }
  // Owned regions of a subtree partition the root interval.
  for (int root : roots_) {
    Time owned_total = 0;
    for (int v : subtree(root)) owned_total += nodes_[v].length();
    NAT_CHECK_MSG(owned_total == nodes_[root].interval.length(),
                  "owned regions do not partition root interval");
  }
}

bool LaminarForest::is_canonical() const {
  for (int i = 0; i < num_nodes(); ++i) {
    const TreeNode& n = nodes_[i];
    if (n.children.size() > 2) return false;
    if (n.children.empty()) {
      if (n.jobs.empty()) return false;
      Time longest = 0;
      for (int j : n.jobs) {
        longest = std::max<Time>(longest, jobs_[j].processing);
      }
      if (longest != n.length()) return false;  // leaf not rigid
    }
  }
  return true;
}

}  // namespace nat::at
