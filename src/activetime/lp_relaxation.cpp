#include "activetime/lp_relaxation.hpp"

#include <algorithm>
#include <cmath>
#include <map>
#include <sstream>

#include "activetime/opt_bounds.hpp"
#include "util/check.hpp"

namespace nat::at {

std::vector<JobClass> build_job_classes(const LaminarForest& forest,
                                        bool aggregate) {
  std::vector<JobClass> classes;
  if (!aggregate) {
    for (int j = 0; j < static_cast<int>(forest.jobs().size()); ++j) {
      JobClass c;
      c.node = forest.node_of_job(j);
      c.processing = forest.jobs()[j].processing;
      c.jobs = {j};
      classes.push_back(std::move(c));
    }
    return classes;
  }
  std::map<std::pair<int, std::int64_t>, int> index;
  for (int j = 0; j < static_cast<int>(forest.jobs().size()); ++j) {
    const int node = forest.node_of_job(j);
    const std::int64_t p = forest.jobs()[j].processing;
    auto [it, inserted] = index.emplace(std::make_pair(node, p),
                                        static_cast<int>(classes.size()));
    if (inserted) {
      JobClass c;
      c.node = node;
      c.processing = p;
      classes.push_back(std::move(c));
    }
    classes[it->second].jobs.push_back(j);
  }
  return classes;
}

StrongLp build_strong_lp(const LaminarForest& forest,
                         const StrongLpOptions& options) {
  StrongLp out;
  out.classes = build_job_classes(forest, options.aggregate_classes);
  const int m = forest.num_nodes();

  // x(i) in [0, L(i)], objective coefficient 1 (constraint (4) as a
  // variable bound).
  out.x_var.resize(m);
  for (int i = 0; i < m; ++i) {
    std::ostringstream name;
    name << "x_" << i;
    out.x_var[i] = out.model.add_variable(
        name.str(), 0.0, static_cast<double>(forest.node(i).length()), 1.0);
  }

  // Y(i, c) >= 0 for i ∈ Des(k(c)); coverage rows (2) per class.
  out.y_vars.resize(out.classes.size());
  // Per-node capacity accumulators for rows (3).
  std::vector<std::vector<std::pair<int, double>>> capacity(m);
  for (std::size_t c = 0; c < out.classes.size(); ++c) {
    const JobClass& cls = out.classes[c];
    std::vector<std::pair<int, double>> coverage;
    for (int i : forest.subtree(cls.node)) {
      if (forest.node(i).length() == 0) continue;  // x(i) forced to 0
      std::ostringstream name;
      name << "y_" << i << "_c" << c;
      int v = out.model.add_variable(name.str(), 0.0, lp::kInf, 0.0);
      out.y_vars[c].push_back({i, v});
      coverage.push_back({v, 1.0});
      capacity[i].push_back({v, 1.0});
      // Constraint (5), aggregated: Y(i,c) <= |c| * x(i).
      out.model.add_row(lp::Sense::kLe, 0.0,
                        {{v, 1.0},
                         {out.x_var[i], -static_cast<double>(cls.count())}});
    }
    // Constraint (2): total assignment covers the class volume.
    out.model.add_row(
        lp::Sense::kGe,
        static_cast<double>(cls.count()) * static_cast<double>(cls.processing),
        std::move(coverage));
  }

  // Constraint (3): sum of assignments at node i is at most g*x(i).
  for (int i = 0; i < m; ++i) {
    if (capacity[i].empty()) continue;
    auto row = capacity[i];
    row.push_back({out.x_var[i], -static_cast<double>(forest.g())});
    out.model.add_row(lp::Sense::kLe, 0.0, std::move(row));
  }

  // Constraints (7)/(8): x(Des(i)) >= 2 when OPT_i >= 2, >= 3 when >= 3.
  // The per-node OPT_i separation (a flow probe per candidate pair,
  // opt_bounds.cpp) dominates LP build time; ceiling_lower_bounds fans
  // it out across the pool (serially below its cutoff) and is
  // deterministic for every worker count, so the model is identical
  // whether the sweep ran pooled or inline.
  if (options.ceiling_constraints) {
    const std::vector<int> lower = ceiling_lower_bounds(forest);
    for (int i = 0; i < m; ++i) {
      const int lb = lower[i];
      if (lb < 2) continue;
      std::vector<std::pair<int, double>> row;
      for (int d : forest.subtree(i)) row.push_back({out.x_var[d], 1.0});
      out.model.add_row(lp::Sense::kGe, static_cast<double>(lb), row);
      (lb == 2 ? out.nodes_opt_ge_2 : out.nodes_opt_ge_3).push_back(i);
    }
  }
  return out;
}

FractionalSolution unpack(const StrongLp& lp, const lp::Solution& solution) {
  NAT_CHECK_MSG(solution.status == lp::Status::kOptimal,
                "unpack: LP not optimal ("
                    << lp::to_string(solution.status) << ")");
  FractionalSolution out;
  out.x.resize(lp.x_var.size());
  for (std::size_t i = 0; i < lp.x_var.size(); ++i) {
    out.x[i] = std::max(0.0, solution.x[lp.x_var[i]]);
  }
  out.y.resize(lp.y_vars.size());
  for (std::size_t c = 0; c < lp.y_vars.size(); ++c) {
    out.y[c].resize(lp.y_vars[c].size());
    for (std::size_t k = 0; k < lp.y_vars[c].size(); ++k) {
      out.y[c][k] = std::max(0.0, solution.x[lp.y_vars[c][k].second]);
    }
  }
  return out;
}

double lp_violation(const LaminarForest& forest, const StrongLp& lp,
                    const FractionalSolution& sol) {
  const int m = forest.num_nodes();
  double viol = 0.0;
  // Bounds (4).
  for (int i = 0; i < m; ++i) {
    viol = std::max(viol, -sol.x[i]);
    viol = std::max(
        viol, sol.x[i] - static_cast<double>(forest.node(i).length()));
  }
  // Coverage (2), per-job cap (5), capacity (3).
  std::vector<double> node_load(m, 0.0);
  for (std::size_t c = 0; c < lp.classes.size(); ++c) {
    const JobClass& cls = lp.classes[c];
    double covered = 0.0;
    for (std::size_t k = 0; k < lp.y_vars[c].size(); ++k) {
      const int i = lp.y_vars[c][k].first;
      const double y = sol.y[c][k];
      viol = std::max(viol, -y);
      viol = std::max(viol, y - cls.count() * sol.x[i]);
      covered += y;
      node_load[i] += y;
    }
    viol = std::max(
        viol, static_cast<double>(cls.count()) * cls.processing - covered);
  }
  for (int i = 0; i < m; ++i) {
    viol = std::max(viol,
                    node_load[i] - static_cast<double>(forest.g()) * sol.x[i]);
  }
  // Ceiling constraints (7)/(8).
  auto subtree_sum = [&](int i) {
    double s = 0.0;
    for (int d : forest.subtree(i)) s += sol.x[d];
    return s;
  };
  for (int i : lp.nodes_opt_ge_2) viol = std::max(viol, 2.0 - subtree_sum(i));
  for (int i : lp.nodes_opt_ge_3) viol = std::max(viol, 3.0 - subtree_sum(i));
  return viol;
}

}  // namespace nat::at
