// The multi-interval generalization from the paper's related work
// (Section 1): unit-length jobs that may be scheduled in any slot of a
// *collection* of intervals. Chang–Gabow–Khuller [2] show this is
// NP-hard already for g >= 3 (poly for g = 2), and that it admits an
// H_g-approximation through Wolsey's submodular-cover framework [12].
//
// This module implements that H_g algorithm: the coverage function
// f(S) = "maximum number of jobs schedulable using open slot set S"
// is monotone submodular (it is the rank of a transversal-style
// matroid intersection, computed here by max-flow), each slot's
// marginal gain is at most g, and the greedy that always opens the
// best slot is an H_g = 1 + 1/2 + ... + 1/g approximation by Wolsey's
// theorem. A slot-subset brute force serves as the OPT oracle in tests.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "activetime/job.hpp"

namespace nat::at {

/// A unit-length job restricted to a union of half-open intervals.
struct MultiWindowJob {
  std::vector<Interval> windows;

  bool allows(Time t) const {
    for (const Interval& w : windows) {
      if (w.contains(t)) return true;
    }
    return false;
  }
};

struct MultiWindowInstance {
  std::int64_t g = 1;
  std::vector<MultiWindowJob> jobs;

  int num_jobs() const { return static_cast<int>(jobs.size()); }
  /// Throws when malformed (g < 1, a job with no window, empty window).
  void validate() const;
  /// Sorted distinct slots belonging to at least one job window.
  std::vector<Time> candidate_slots() const;
};

/// f(S): the maximum number of jobs schedulable with the open slots S
/// (<= g per slot, each job needs one slot it allows). Monotone and
/// submodular in S.
std::int64_t max_coverage(const MultiWindowInstance& instance,
                          const std::vector<Time>& open_slots);

struct HgResult {
  std::vector<Time> open_slots;          // greedily chosen, in pick order
  std::vector<Time> assignment;          // slot per job
  std::int64_t active_slots = 0;
};

/// Wolsey-greedy submodular cover: repeatedly open the slot with the
/// largest marginal coverage gain (ties: leftmost) until every job is
/// covered. NAT_CHECKs that the instance is feasible (all candidate
/// slots open cover everything). Guarantee: |open| <= H_g * OPT.
HgResult solve_multi_window_hg(const MultiWindowInstance& instance);

/// Exact minimum number of open slots by subset enumeration; nullopt
/// when the candidate slot count exceeds `max_slots`.
std::optional<std::int64_t> exact_multi_window(
    const MultiWindowInstance& instance, int max_slots = 20);

/// H_g = 1 + 1/2 + ... + 1/g.
double harmonic(std::int64_t g);

}  // namespace nat::at
