// Flow-based feasibility oracles and schedule extraction.
//
// Two levels, both reductions to max-flow saturation (the classical
// test the paper cites, and the 4-layer network of Lemma 4.1):
//
//  * slot level (general instances): source → job (cap p_j) →
//    open slot within the window (cap 1) → sink (cap g);
//  * region level (laminar instances): source → job (cap p_j) →
//    tree region i ∈ Des(k(j)) (cap open[i]) → sink (cap g·open[i]).
//
// The region-level test is exact because every slot in a node's
// exclusive region is usable by exactly the jobs of its ancestors.
// Extraction materializes the leftmost `open[i]` slots of each region
// and distributes each job's per-region volume over concrete slots with
// a least-loaded greedy (always realizable: per-job use ≤ open count
// and total ≤ g·open; validated defensively).
#pragma once

#include <optional>
#include <vector>

#include "activetime/instance.hpp"
#include "activetime/schedule.hpp"
#include "activetime/tree.hpp"

namespace nat::at {

/// --- Slot level (works for any instance, laminar or not) -----------------

/// True iff all jobs fit using only the given open slot times
/// (duplicates allowed in input; they are deduplicated).
bool feasible_with_slots(const Instance& instance,
                         const std::vector<Time>& open_slots);

/// Schedule using only the given open slots, or nullopt if infeasible.
std::optional<Schedule> schedule_with_slots(
    const Instance& instance, const std::vector<Time>& open_slots);

/// --- Region level (laminar; counts indexed by forest node) ---------------

/// True iff the forest's jobs fit when region i has open[i] open slots.
/// NAT_CHECKs 0 <= open[i] <= L(i).
bool feasible_with_counts(const LaminarForest& forest,
                          const std::vector<Time>& open);

/// Extracts a schedule for the forest's jobs (post-canonicalization
/// windows, which are subsets of the originals) under region counts.
std::optional<Schedule> schedule_with_counts(const LaminarForest& forest,
                                             const std::vector<Time>& open);

/// The concrete slot times materialized for the given counts: the
/// leftmost open[i] slots of each region.
std::vector<Time> materialize_slots(const LaminarForest& forest,
                                    const std::vector<Time>& open);

}  // namespace nat::at
