// Job and interval primitives for the active-time problem.
#pragma once

#include <cstdint>
#include <iosfwd>

namespace nat::at {

using Time = std::int64_t;

/// Half-open time interval [lo, hi).
struct Interval {
  Time lo = 0;
  Time hi = 0;

  Time length() const { return hi - lo; }
  bool empty() const { return hi <= lo; }
  bool contains(Time t) const { return lo <= t && t < hi; }
  /// this ⊆ other.
  bool inside(const Interval& other) const {
    return other.lo <= lo && hi <= other.hi;
  }
  /// this ⊊ other.
  bool strictly_inside(const Interval& other) const {
    return inside(other) && (lo != other.lo || hi != other.hi);
  }
  bool disjoint(const Interval& other) const {
    return hi <= other.lo || other.hi <= lo;
  }
  friend bool operator==(const Interval&, const Interval&) = default;
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

/// A preemptible job: must receive `processing` distinct unit slots
/// inside its window [release, deadline).
///
/// Robust mode (docs/ROBUST.md): a job may additionally carry an
/// uncertainty interval [processing_lo, processing_hi] around its
/// nominal processing time. Both 0 (the default) means "point job" —
/// the solvers only ever read `processing`, so point instances are
/// bit-identical with or without the robust machinery; the robust
/// driver (robust.hpp) materializes the lo/hi corner instances itself.
struct Job {
  Time release = 0;
  Time deadline = 0;
  std::int64_t processing = 1;
  std::int64_t processing_lo = 0;  // 0 = no uncertainty interval
  std::int64_t processing_hi = 0;  // 0 = no uncertainty interval

  Interval window() const { return Interval{release, deadline}; }
  /// True when this job carries a [p_lo, p_hi] uncertainty interval.
  bool has_processing_interval() const {
    return processing_lo != 0 || processing_hi != 0;
  }
  friend bool operator==(const Job&, const Job&) = default;
};

std::ostream& operator<<(std::ostream& os, const Job& job);

}  // namespace nat::at
