#include "activetime/multi_window.hpp"

#include <algorithm>
#include <bit>

#include "flow/dinic.hpp"
#include "util/check.hpp"

namespace nat::at {

void MultiWindowInstance::validate() const {
  NAT_CHECK_MSG(g >= 1, "multi-window: g must be >= 1");
  for (std::size_t j = 0; j < jobs.size(); ++j) {
    NAT_CHECK_MSG(!jobs[j].windows.empty(),
                  "multi-window job " << j << " has no windows");
    for (const Interval& w : jobs[j].windows) {
      NAT_CHECK_MSG(!w.empty(), "multi-window job " << j
                                    << " has an empty window " << w);
    }
  }
}

std::vector<Time> MultiWindowInstance::candidate_slots() const {
  std::vector<Time> slots;
  for (const MultiWindowJob& job : jobs) {
    for (const Interval& w : job.windows) {
      for (Time t = w.lo; t < w.hi; ++t) slots.push_back(t);
    }
  }
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  return slots;
}

namespace {

struct CoverageNetwork {
  flow::MaxFlowGraph graph;
  int s = 0, t = 0;
  std::vector<std::vector<std::pair<int, int>>> job_edges;  // (slot, edge)
};

CoverageNetwork build_network(const MultiWindowInstance& instance,
                              const std::vector<Time>& slots) {
  const int n = instance.num_jobs();
  const int S = static_cast<int>(slots.size());
  CoverageNetwork net;
  net.graph = flow::MaxFlowGraph(n + S + 2);
  net.s = n + S;
  net.t = n + S + 1;
  net.job_edges.resize(n);
  for (int j = 0; j < n; ++j) {
    net.graph.add_edge(net.s, j, 1);
    for (int k = 0; k < S; ++k) {
      if (instance.jobs[j].allows(slots[k])) {
        net.job_edges[j].push_back(
            {k, net.graph.add_edge(j, n + k, 1)});
      }
    }
  }
  for (int k = 0; k < S; ++k) {
    net.graph.add_edge(n + k, net.t, instance.g);
  }
  return net;
}

}  // namespace

std::int64_t max_coverage(const MultiWindowInstance& instance,
                          const std::vector<Time>& open_slots) {
  instance.validate();
  std::vector<Time> slots = open_slots;
  std::sort(slots.begin(), slots.end());
  slots.erase(std::unique(slots.begin(), slots.end()), slots.end());
  CoverageNetwork net = build_network(instance, slots);
  return net.graph.max_flow(net.s, net.t);
}

double harmonic(std::int64_t g) {
  double h = 0.0;
  for (std::int64_t i = 1; i <= g; ++i) h += 1.0 / static_cast<double>(i);
  return h;
}

HgResult solve_multi_window_hg(const MultiWindowInstance& instance) {
  instance.validate();
  const std::vector<Time> candidates = instance.candidate_slots();
  const std::int64_t n = instance.num_jobs();
  NAT_CHECK_MSG(max_coverage(instance, candidates) == n,
                "multi-window instance is infeasible");

  HgResult result;
  std::int64_t covered = 0;
  std::vector<bool> used(candidates.size(), false);
  while (covered < n) {
    // Greedy step: slot with the best marginal gain (ties: leftmost).
    std::int64_t best_gain = 0;
    int best = -1;
    for (std::size_t k = 0; k < candidates.size(); ++k) {
      if (used[k]) continue;
      std::vector<Time> trial = result.open_slots;
      trial.push_back(candidates[k]);
      const std::int64_t gain = max_coverage(instance, trial) - covered;
      if (gain > best_gain) {
        best_gain = gain;
        best = static_cast<int>(k);
      }
    }
    NAT_CHECK_MSG(best >= 0, "greedy stalled on a feasible instance");
    used[best] = true;
    result.open_slots.push_back(candidates[best]);
    covered += best_gain;
  }

  // Extract the final assignment from one more flow computation.
  std::vector<Time> slots = result.open_slots;
  std::sort(slots.begin(), slots.end());
  CoverageNetwork net = build_network(instance, slots);
  const std::int64_t flow = net.graph.max_flow(net.s, net.t);
  NAT_CHECK(flow == n);
  result.assignment.assign(n, -1);
  for (int j = 0; j < n; ++j) {
    for (const auto& [slot, edge] : net.job_edges[j]) {
      if (net.graph.flow_on(edge) > 0) {
        result.assignment[j] = slots[slot];
        break;
      }
    }
    NAT_CHECK(result.assignment[j] >= 0);
  }
  result.active_slots = static_cast<std::int64_t>(result.open_slots.size());
  return result;
}

std::optional<std::int64_t> exact_multi_window(
    const MultiWindowInstance& instance, int max_slots) {
  instance.validate();
  const std::vector<Time> candidates = instance.candidate_slots();
  const int S = static_cast<int>(candidates.size());
  if (S > max_slots) return std::nullopt;
  const std::int64_t n = instance.num_jobs();
  NAT_CHECK_MSG(max_coverage(instance, candidates) == n,
                "multi-window instance is infeasible");
  int best = S;
  const std::uint32_t full = (S >= 31) ? 0x7fffffffu : ((1u << S) - 1);
  for (std::uint32_t mask = 0; mask <= full; ++mask) {
    const int k = std::popcount(mask);
    if (k >= best) continue;
    std::vector<Time> open;
    for (int b = 0; b < S; ++b) {
      if (mask & (1u << b)) open.push_back(candidates[b]);
    }
    if (max_coverage(instance, open) == n) best = k;
    if (mask == full) break;
  }
  return best;
}

}  // namespace nat::at
