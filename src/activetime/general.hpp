// LP-rounding 2-approximation for *general* (non-laminar) active-time
// instances, after Chang–Khuller–Mukherjee (arXiv 1610.08154).
//
// The 9/5 pipeline of solver.hpp needs nested windows; this backend
// drops that restriction. It solves the natural time-indexed LP
// (time_indexed_lp.hpp) through the shared lp::solve_auto backend and
// rounds the fractional x(t) to an open-slot set with a flow-repair
// loop on a *warm* slot-level oracle (one Lemma-4.1-style network per
// solve, Dinic capacities retuned in place between queries):
//
//  * threshold candidate: open S = {t : x(t) >= 1/2}; while the flow
//    test fails, open the highest-x closed slot whose opening grows the
//    certified min cut (strict flow progress, so the loop terminates);
//  * sweep candidate (tried when the threshold result misses the
//    budget): open a slot every time the doubled cumulative LP mass
//    crosses an integer — exactly floor(2·LP) slots that satisfy every
//    interval lower bound ceil(q(I)/g) (docs/GENERAL.md has the proof
//    sketch);
//  * both candidates are trimmed back to minimal feasible (ascending
//    x), and greedy deactivation (all-open, close right-to-left on the
//    same warm oracle) is the final fallback when the LP fails or both
//    candidates exceed 2·LP.
//
// The returned solution is always flow-certified feasible; the 2·LP
// budget is certified in rational arithmetic by the verify layer
// (verify::check_general_budget) at kFull, and the differential fuzzer
// checks the full sandwich LP <= OPT <= ALG <= 2·OPT against the exact
// brute-force baseline on small instances.
#pragma once

#include <cstdint>
#include <vector>

#include "activetime/instance.hpp"
#include "activetime/schedule.hpp"
#include "activetime/time_indexed_lp.hpp"
#include "util/cancel.hpp"
#include "verify/verify.hpp"

namespace nat::at {

/// Which rounding produced the returned open-slot set.
enum class GeneralRounding {
  kThreshold,  // x >= 1/2 support + flow repair + trim
  kSweep,      // doubled-prefix-mass crossings + flow repair + trim
  kGreedy,     // greedy deactivation fallback
};

const char* to_string(GeneralRounding rounding);

struct GeneralSolverOptions {
  // Interval family for the LP's ceiling rows. The natural LP (kNone)
  // is the relaxation the 2·LP budget is stated against; adding rows
  // only raises the LP value, so the budget stays valid (and gets
  // easier) with kEventAligned.
  CeilingIntervals intervals = CeilingIntervals::kNone;
  // Exact-arithmetic self-check level (see verify/verify.hpp).
  verify::VerifyLevel verify_level = verify::VerifyLevel::kDefault;
  double verify_radius = verify::kDefaultRadius;
  // Close rounded slots while the oracle stays feasible. Only ever
  // removes slots, so feasibility and the budget are preserved; on by
  // default because the general rounding (unlike Algorithm 1) has no
  // per-slot charging argument that trimming would invalidate.
  bool trim = true;
  // Cooperative cancellation (util/cancel.hpp): polled at every simplex
  // pivot, oracle flow query, repair step, and trim step.
  const util::CancelToken* cancel = nullptr;
};

struct GeneralSolveResult {
  Schedule schedule;             // feasible for the instance
  std::int64_t active_slots = 0;
  std::vector<Time> open_slots;  // the rounded open set (sorted)
  double lp_value = 0.0;         // optimum of the time-indexed LP
  GeneralRounding rounding = GeneralRounding::kThreshold;
  // True when the LP backend failed to reach optimal and the solve fell
  // back to greedy deactivation (no 2·LP certificate in that case —
  // lp_value is 0 and rounding is kGreedy).
  bool lp_failed = false;
  int repairs = 0;               // slots opened by the flow-repair loop
  std::int64_t lp_iterations = 0;
};

/// Solves an arbitrary-window instance with the LP-rounding 2-approx.
/// NAT_CHECKs feasibility (the instance must fit with every slot open).
/// Laminar instances are accepted too — the dispatcher in solver.hpp
/// routes them to the 9/5 pipeline instead, but nothing here assumes
/// non-laminarity.
GeneralSolveResult solve_general(const Instance& instance,
                                 const GeneralSolverOptions& options = {});

}  // namespace nat::at
