#include "activetime/feasibility.hpp"

#include <algorithm>
#include <queue>

#include "flow/dinic.hpp"
#include "obs/counters.hpp"
#include "util/check.hpp"

namespace nat::at {

namespace {

std::vector<Time> dedup_sorted(std::vector<Time> v) {
  std::sort(v.begin(), v.end());
  v.erase(std::unique(v.begin(), v.end()), v.end());
  return v;
}

/// Builds the job→slot network. The job→slot arcs are stored sparsely:
/// a job's half-open window covers a *contiguous* run of the sorted
/// slot array, so per job we keep the first covered slot index plus one
/// edge id per covered slot. The former dense n×S matrix needed
/// n*S entries (and n*S index products that overflow 32 bits near the
/// job-count cap with wide windows); this is O(total covered slots).
struct SlotNetwork {
  flow::MaxFlowGraph graph;
  int s = 0, t = 0;
  std::vector<std::size_t> job_first_slot;  // index into slots, per job
  std::vector<std::vector<int>> job_edges;  // edge ids, per covered slot
  std::vector<Time> slots;
};

SlotNetwork build_slot_network(const Instance& instance,
                               const std::vector<Time>& open_slots) {
  SlotNetwork net;
  net.slots = dedup_sorted(open_slots);
  const int n = instance.num_jobs();
  const int S = static_cast<int>(net.slots.size());
  net.graph = flow::MaxFlowGraph(n + S + 2);
  net.s = n + S;
  net.t = n + S + 1;
  net.job_first_slot.assign(static_cast<std::size_t>(n), 0);
  net.job_edges.resize(static_cast<std::size_t>(n));
  for (int j = 0; j < n; ++j) {
    net.graph.add_edge(net.s, j, instance.jobs[j].processing);
  }
  for (int k = 0; k < S; ++k) {
    net.graph.add_edge(n + k, net.t, instance.g);
  }
  for (int j = 0; j < n; ++j) {
    const Interval w = instance.jobs[j].window();
    const auto first =
        std::lower_bound(net.slots.begin(), net.slots.end(), w.lo);
    const auto last = std::lower_bound(first, net.slots.end(), w.hi);
    net.job_first_slot[j] =
        static_cast<std::size_t>(first - net.slots.begin());
    auto& edges = net.job_edges[j];
    edges.reserve(static_cast<std::size_t>(last - first));
    for (auto it = first; it != last; ++it) {
      const int k = static_cast<int>(it - net.slots.begin());
      edges.push_back(net.graph.add_edge(j, n + k, 1));
    }
  }
  return net;
}

}  // namespace

bool feasible_with_slots(const Instance& instance,
                         const std::vector<Time>& open_slots) {
  static obs::Counter& c = obs::counter("at.oracle.slot_checks");
  c.add(1);
  SlotNetwork net = build_slot_network(instance, open_slots);
  return net.graph.max_flow(net.s, net.t) == instance.total_volume();
}

std::optional<Schedule> schedule_with_slots(
    const Instance& instance, const std::vector<Time>& open_slots) {
  SlotNetwork net = build_slot_network(instance, open_slots);
  if (net.graph.max_flow(net.s, net.t) != instance.total_volume()) {
    return std::nullopt;
  }
  const int n = instance.num_jobs();
  Schedule sched;
  sched.assignment.resize(n);
  for (int j = 0; j < n; ++j) {
    const std::size_t first = net.job_first_slot[j];
    const std::vector<int>& edges = net.job_edges[j];
    for (std::size_t i = 0; i < edges.size(); ++i) {
      if (net.graph.flow_on(edges[i]) > 0) {
        sched.assignment[j].push_back(net.slots[first + i]);
      }
    }
  }
  return sched;
}

std::vector<Time> materialize_slots(const LaminarForest& forest,
                                    const std::vector<Time>& open) {
  NAT_CHECK(static_cast<int>(open.size()) == forest.num_nodes());
  std::vector<Time> slots;
  for (int i = 0; i < forest.num_nodes(); ++i) {
    NAT_CHECK_MSG(open[i] >= 0 && open[i] <= forest.node(i).length(),
                  "region " << i << ": open count " << open[i]
                            << " out of [0, " << forest.node(i).length()
                            << "]");
    Time remaining = open[i];
    for (const Interval& iv : forest.node(i).owned) {
      for (Time t = iv.lo; t < iv.hi && remaining > 0; ++t, --remaining) {
        slots.push_back(t);
      }
      if (remaining == 0) break;
    }
  }
  return dedup_sorted(slots);
}

namespace {

struct RegionNetwork {
  flow::MaxFlowGraph graph;
  int s = 0, t = 0;
  // Sparse job→region arcs: (job, region, edge id).
  struct Arc {
    int job, region, edge;
  };
  std::vector<Arc> arcs;
};

RegionNetwork build_region_network(const LaminarForest& forest,
                                   const std::vector<Time>& open) {
  NAT_CHECK(static_cast<int>(open.size()) == forest.num_nodes());
  const int n = static_cast<int>(forest.jobs().size());
  const int m = forest.num_nodes();
  RegionNetwork net;
  net.graph = flow::MaxFlowGraph(n + m + 2);
  net.s = n + m;
  net.t = n + m + 1;
  for (int j = 0; j < n; ++j) {
    net.graph.add_edge(net.s, j, forest.jobs()[j].processing);
  }
  for (int i = 0; i < m; ++i) {
    NAT_CHECK(open[i] >= 0 && open[i] <= forest.node(i).length());
    if (open[i] > 0) {
      net.graph.add_edge(n + i, net.t, forest.g() * open[i]);
    }
  }
  for (int j = 0; j < n; ++j) {
    const int kj = forest.node_of_job(j);
    for (int i : forest.subtree(kj)) {
      if (open[i] > 0) {
        int e = net.graph.add_edge(j, n + i, open[i]);
        net.arcs.push_back({j, i, e});
      }
    }
  }
  return net;
}

std::int64_t total_volume(const LaminarForest& forest) {
  std::int64_t v = 0;
  for (const Job& job : forest.jobs()) v += job.processing;
  return v;
}

}  // namespace

bool feasible_with_counts(const LaminarForest& forest,
                          const std::vector<Time>& open) {
  static obs::Counter& c = obs::counter("at.oracle.count_checks");
  c.add(1);
  RegionNetwork net = build_region_network(forest, open);
  return net.graph.max_flow(net.s, net.t) == total_volume(forest);
}

std::optional<Schedule> schedule_with_counts(const LaminarForest& forest,
                                             const std::vector<Time>& open) {
  RegionNetwork net = build_region_network(forest, open);
  if (net.graph.max_flow(net.s, net.t) != total_volume(forest)) {
    return std::nullopt;
  }
  const int n = static_cast<int>(forest.jobs().size());
  const int m = forest.num_nodes();

  // Per-region job volumes from the flow.
  std::vector<std::vector<std::pair<std::int64_t, int>>> region_jobs(m);
  for (const auto& arc : net.arcs) {
    std::int64_t f = net.graph.flow_on(arc.edge);
    if (f > 0) region_jobs[arc.region].push_back({f, arc.job});
  }

  Schedule sched;
  sched.assignment.resize(n);
  for (int i = 0; i < m; ++i) {
    if (region_jobs[i].empty()) continue;
    // Concrete slots for this region: leftmost open[i] of owned ranges.
    std::vector<Time> slots;
    Time remaining = open[i];
    for (const Interval& iv : forest.node(i).owned) {
      for (Time t = iv.lo; t < iv.hi && remaining > 0; ++t, --remaining) {
        slots.push_back(t);
      }
    }
    // Least-loaded greedy on descending volume. Always realizable since
    // each volume <= |slots| (arc capacity) and total <= g * |slots|.
    // A (load, slot) min-heap replaces the former full re-sort per job:
    // each slot sits in the heap exactly once, so picking a job's `vol`
    // least-loaded slots is vol pops + vol pushes, with the same
    // load-then-index order a stable sort by load produced.
    std::sort(region_jobs[i].rbegin(), region_jobs[i].rend());
    std::priority_queue<std::pair<std::int64_t, int>,
                        std::vector<std::pair<std::int64_t, int>>,
                        std::greater<>>
        least_loaded;
    for (std::size_t k = 0; k < slots.size(); ++k) {
      least_loaded.push({0, static_cast<int>(k)});
    }
    std::vector<std::pair<std::int64_t, int>> taken;
    for (const auto& [vol, job] : region_jobs[i]) {
      NAT_CHECK_MSG(vol <= static_cast<std::int64_t>(slots.size()),
                    "region volume exceeds slot count");
      taken.clear();
      for (std::int64_t k = 0; k < vol; ++k) {
        taken.push_back(least_loaded.top());
        least_loaded.pop();
      }
      for (const auto& [load, slot] : taken) {
        NAT_CHECK_MSG(load < forest.g(),
                      "greedy slot fill exceeded capacity");
        sched.assignment[job].push_back(slots[slot]);
        least_loaded.push({load + 1, slot});
      }
    }
  }
  for (auto& slots : sched.assignment) std::sort(slots.begin(), slots.end());
  return sched;
}

}  // namespace nat::at
