#include "activetime/certificates.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace nat::at {

namespace {

/// |J'(Anc(i))| for every node i: the number of subset jobs whose node
/// is an ancestor of i (those are exactly the jobs allowed in region i).
std::vector<std::int64_t> subset_jobs_above(
    const LaminarForest& forest, const std::vector<int>& job_subset) {
  std::vector<std::int64_t> at_node(forest.num_nodes(), 0);
  for (int j : job_subset) {
    ++at_node[forest.node_of_job(j)];
  }
  // Push down the tree: count of subset jobs at ancestors (inclusive).
  std::vector<std::int64_t> above(forest.num_nodes(), 0);
  for (int r : forest.roots()) {
    // Preorder via subtree(): parents precede children.
    for (int v : forest.subtree(r)) {
      const int p = forest.node(v).parent;
      above[v] = at_node[v] + (p >= 0 ? above[p] : 0);
    }
  }
  return above;
}

}  // namespace

std::int64_t lemma41_lhs(const LaminarForest& forest,
                         const std::vector<Time>& counts,
                         const std::vector<int>& job_subset) {
  NAT_CHECK(static_cast<int>(counts.size()) == forest.num_nodes());
  const std::vector<std::int64_t> above =
      subset_jobs_above(forest, job_subset);
  std::int64_t lhs = 0;
  for (int i = 0; i < forest.num_nodes(); ++i) {
    lhs += std::min(above[i], forest.g()) * counts[i];
  }
  return lhs;
}

std::int64_t lemma41_rhs(const LaminarForest& forest,
                         const std::vector<int>& job_subset) {
  std::int64_t rhs = 0;
  for (int j : job_subset) rhs += forest.jobs().at(j).processing;
  return rhs;
}

std::optional<std::vector<int>> find_violating_subset(
    const LaminarForest& forest, const std::vector<Time>& counts) {
  const int n = static_cast<int>(forest.jobs().size());
  NAT_CHECK_MSG(n <= 20, "subset sweep limited to 20 jobs, got " << n);
  for (std::uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<int> subset;
    for (int j = 0; j < n; ++j) {
      if (mask & (1u << j)) subset.push_back(j);
    }
    if (lemma41_lhs(forest, counts, subset) <
        lemma41_rhs(forest, subset)) {
      return subset;
    }
  }
  return std::nullopt;
}

std::int64_t lemma43_cheap_capacity(const LaminarForest& forest,
                                    const std::vector<Time>& counts,
                                    const std::vector<int>& job_subset,
                                    int job) {
  const std::vector<std::int64_t> above =
      subset_jobs_above(forest, job_subset);
  std::int64_t cheap = 0;
  for (int i : forest.subtree(forest.node_of_job(job))) {
    if (above[i] <= forest.g()) cheap += counts[i];
  }
  return cheap;
}

bool satisfies_lemma43_property(const LaminarForest& forest,
                                const std::vector<Time>& counts,
                                const std::vector<int>& job_subset) {
  for (int j : job_subset) {
    if (forest.jobs()[j].processing <=
        lemma43_cheap_capacity(forest, counts, job_subset, j)) {
      return false;
    }
  }
  return true;
}

}  // namespace nat::at
