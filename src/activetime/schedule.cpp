#include "activetime/schedule.hpp"

#include <algorithm>
#include <map>
#include <sstream>

#include "util/check.hpp"

namespace nat::at {

std::int64_t Schedule::active_slots() const {
  return static_cast<std::int64_t>(active_times().size());
}

std::vector<Time> Schedule::active_times() const {
  std::vector<Time> times;
  for (const auto& slots : assignment) {
    times.insert(times.end(), slots.begin(), slots.end());
  }
  std::sort(times.begin(), times.end());
  times.erase(std::unique(times.begin(), times.end()), times.end());
  return times;
}

bool is_valid_schedule(const Instance& instance, const Schedule& schedule,
                       std::string* why) {
  auto fail = [&](const std::string& msg) {
    if (why != nullptr) *why = msg;
    return false;
  };
  if (schedule.assignment.size() != instance.jobs.size()) {
    return fail("assignment size mismatch");
  }
  std::map<Time, std::int64_t> load;
  for (std::size_t j = 0; j < instance.jobs.size(); ++j) {
    const Job& job = instance.jobs[j];
    const auto& slots = schedule.assignment[j];
    if (static_cast<std::int64_t>(slots.size()) != job.processing) {
      std::ostringstream os;
      os << "job " << j << ": got " << slots.size() << " slots, needs "
         << job.processing;
      return fail(os.str());
    }
    for (std::size_t k = 0; k < slots.size(); ++k) {
      if (k > 0 && slots[k] <= slots[k - 1]) {
        std::ostringstream os;
        os << "job " << j << ": slots not strictly increasing";
        return fail(os.str());
      }
      if (!job.window().contains(slots[k])) {
        std::ostringstream os;
        os << "job " << j << ": slot " << slots[k] << " outside window "
           << job.window();
        return fail(os.str());
      }
      ++load[slots[k]];
    }
  }
  for (const auto& [t, l] : load) {
    if (l > instance.g) {
      std::ostringstream os;
      os << "slot " << t << ": load " << l << " exceeds g=" << instance.g;
      return fail(os.str());
    }
  }
  return true;
}

void validate_schedule(const Instance& instance, const Schedule& schedule) {
  std::string why;
  NAT_CHECK_MSG(is_valid_schedule(instance, schedule, &why),
                "invalid schedule: " << why);
}

}  // namespace nat::at
