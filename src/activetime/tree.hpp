// Laminar forest of job windows (Section 2 of the paper).
//
// Each node corresponds to a distinct job window K(i); node i' is a
// child of i when K(i') ⊊ K(i) with nothing strictly between. Jobs map
// to the node with their exact window (k(j)).
//
// Canonicalization (Definition 2.1) makes the forest binary and every
// leaf rigid:
//   * binarize: a node with t > 2 children gets virtual internal nodes
//     (no jobs, zero exclusive length) grouping adjacent children;
//   * rigid leaves: a leaf whose longest job is shorter than its
//     exclusive length gets a child covering the leaf's first p* slots,
//     and that longest job's window shrinks to the child (solution-
//     preserving, as argued in the paper).
//
// Because a virtual node's hull interval may cover gaps between its
// children, slot ownership is tracked explicitly: each node owns the
// concrete slot ranges of its *exclusive region* (K(i) minus children
// regions for real nodes; nothing for virtual nodes). L(i) is the total
// owned length. All solvers reason about per-region open counts and
// materialize concrete slots from the owned ranges.
#pragma once

#include <cstdint>
#include <vector>

#include "activetime/instance.hpp"

namespace nat::at {

struct TreeNode {
  Interval interval;            // K(i) (hull for virtual nodes)
  int parent = -1;
  std::vector<int> children;
  std::vector<int> jobs;        // job indices with k(j) == this node
  std::vector<Interval> owned;  // exclusive slot ranges, sorted, disjoint
  bool is_virtual = false;

  /// L(i): number of slots in the exclusive region.
  Time length() const {
    Time total = 0;
    for (const Interval& iv : owned) total += iv.length();
    return total;
  }
};

class LaminarForest {
 public:
  /// Builds the window forest of a laminar instance. NAT_CHECKs
  /// laminarity (call Instance::is_laminar() first for a soft test).
  static LaminarForest build(const Instance& instance);

  /// Applies the canonicalization above. Job windows may shrink; the
  /// forest keeps its own job list (windows only ever shrink, so any
  /// schedule for the canonical jobs is valid for the originals).
  void canonicalize();

  int num_nodes() const { return static_cast<int>(nodes_.size()); }
  const TreeNode& node(int i) const { return nodes_.at(i); }
  const std::vector<TreeNode>& nodes() const { return nodes_; }
  const std::vector<int>& roots() const { return roots_; }

  std::int64_t g() const { return g_; }
  /// Jobs as the forest sees them (post-canonicalization windows).
  const std::vector<Job>& jobs() const { return jobs_; }
  /// k(j): the node owning job j's window.
  int node_of_job(int j) const { return job_node_.at(j); }

  /// True iff a ∈ Anc(d) (inclusive: is_ancestor(i, i) is true).
  bool is_ancestor(int a, int d) const;
  int depth(int i) const { return depth_.at(i); }

  /// All nodes, children before parents (roots last).
  const std::vector<int>& postorder() const { return postorder_; }
  /// Des(i), inclusive, in preorder.
  std::vector<int> subtree(int i) const;

  /// Sanity invariants (used by tests and NAT_DCHECK'd internally):
  /// tree shape consistent, owned regions partition root intervals,
  /// every non-virtual node has >= 1 job, jobs sit at the right node.
  void check_invariants() const;

  /// True iff every leaf is rigid and every node has <= 2 children.
  bool is_canonical() const;

 private:
  void rebuild_indices();  // depth, Euler tin/tout, postorder
  int add_node(TreeNode n);

  std::vector<TreeNode> nodes_;
  std::vector<int> roots_;
  std::vector<Job> jobs_;
  std::vector<int> job_node_;
  std::int64_t g_ = 1;

  std::vector<int> depth_;
  std::vector<int> tin_, tout_;
  std::vector<int> postorder_;
};

}  // namespace nat::at
