// The strengthened tree LP of the paper (Figure 1(a), LP (1)).
//
// Variables: x(i) = fractional open slots in region i (bounded by
// L(i), constraint (4)); y(i,j) = volume of job j placed in region i,
// only for i ∈ Des(k(j)) (constraint (6) by construction).
// Rows: coverage (2), capacity (3), per-job cap (5), and the ceiling
// constraints (7)/(8) driven by the OPT_i tests in opt_bounds.*.
//
// Jobs with identical (node, processing) are symmetric in the LP, so
// the builder aggregates them into weighted classes by default: the
// class variable Y(i,c) stands for the sum of its members' y(i,j), the
// per-job cap (5) becomes Y(i,c) <= |c| * x(i). Averaging a feasible y
// over the class (the feasible region is convex and permutation-
// symmetric) shows the aggregated LP has the same optimum; tests verify
// this against the non-aggregated build.
#pragma once

#include <cstdint>
#include <vector>

#include "activetime/tree.hpp"
#include "lp/dense_simplex.hpp"
#include "lp/model.hpp"

namespace nat::at {

/// Symmetric job group: all jobs at `node` with this processing time.
struct JobClass {
  int node = -1;
  std::int64_t processing = 0;
  std::vector<int> jobs;  // member job indices

  int count() const { return static_cast<int>(jobs.size()); }
};

std::vector<JobClass> build_job_classes(const LaminarForest& forest,
                                        bool aggregate);

struct StrongLpOptions {
  bool aggregate_classes = true;
  bool ceiling_constraints = true;  // constraints (7)/(8); off = ablation
};

struct StrongLp {
  lp::Model model;
  std::vector<int> x_var;  // per tree node
  // Per class: (node, variable index) for each i ∈ Des(k(class)).
  std::vector<std::vector<std::pair<int, int>>> y_vars;
  std::vector<JobClass> classes;
  // Nodes for which constraint (7) (OPT_i >= 2) / (8) (OPT_i >= 3)
  // were emitted.
  std::vector<int> nodes_opt_ge_2;
  std::vector<int> nodes_opt_ge_3;
};

StrongLp build_strong_lp(const LaminarForest& forest,
                         const StrongLpOptions& options = {});

/// Fractional LP solution in tree coordinates.
struct FractionalSolution {
  std::vector<double> x;                // per node
  std::vector<std::vector<double>> y;   // y[c][k] aligned with y_vars[c]
};

/// Unpacks an lp::Solution into tree coordinates.
FractionalSolution unpack(const StrongLp& lp, const lp::Solution& solution);

/// Max violation of LP (1) at (x, y) — 0 (up to fp noise) iff feasible.
/// Used by tests to certify the Lemma 3.1 transform output.
double lp_violation(const LaminarForest& forest, const StrongLp& lp,
                    const FractionalSolution& sol);

}  // namespace nat::at
