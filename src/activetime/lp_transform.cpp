#include "activetime/lp_transform.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "obs/counters.hpp"
#include "util/check.hpp"

namespace nat::at {

void push_down_transform(const LaminarForest& forest, const StrongLp& lp,
                         FractionalSolution& sol) {
  const int m = forest.num_nodes();
  NAT_CHECK(static_cast<int>(sol.x.size()) == m);

  std::int64_t moves = 0;     // individual θ relocations i → d
  double mass_moved = 0.0;    // total θ mass relocated down the tree

  // Reverse index: for each node, the (class, slot-in-class) pairs of
  // its y variables.
  std::vector<std::vector<std::pair<int, int>>> at_node(m);
  for (std::size_t c = 0; c < lp.y_vars.size(); ++c) {
    for (std::size_t k = 0; k < lp.y_vars[c].size(); ++k) {
      at_node[lp.y_vars[c][k].first].push_back(
          {static_cast<int>(c), static_cast<int>(k)});
    }
  }

  // Single postorder pass over intrusive per-subtree lists of
  // spare-capacity candidates, ordered descendant-before-ancestor —
  // the only order Lemma 3.1 needs: consuming a list front-first fills
  // every spare descendant of a node before the node itself, so a
  // positive node never ends up above a non-full one (nodes in
  // different branches are incomparable and may fill in any order).
  // Children's lists are concatenated in O(#children) and each filled
  // candidate is dropped for good, so the transform is O(n + moves)
  // instead of the previous per-node rebuild-and-sort of the full
  // descendant set, which was quadratic on deep forests. Mirrors
  // exact_push_down in exact_pipeline.cpp.
  std::vector<int> next(m, -1), head(m, -1), tail(m, -1);
  for (int i : forest.postorder()) {
    // Children precede i in postorder, so their lists are final.
    int h = -1, t = -1;
    for (int c : forest.node(i).children) {
      if (head[c] < 0) continue;
      if (h < 0) {
        h = head[c];
      } else {
        next[t] = head[c];
      }
      t = tail[c];
    }
    if (sol.x[i] > kFracEps) {
      while (h >= 0 && sol.x[i] > kFracEps) {
        const int d = h;
        const double spare =
            static_cast<double>(forest.node(d).length()) - sol.x[d];
        if (spare <= kFracEps) {  // fp residue only: drop the candidate
          h = next[d];
          continue;
        }
        const double theta = std::min(spare, sol.x[i]);
        // Guard the proportional split against a near-zero denominator:
        // when the move drains i to within kFracEps, relocate every
        // remaining share outright. A ratio formed against a
        // sub-epsilon x(i) amplifies fp error, and the sub-tolerance
        // snap below would then zero x(i) while a y residue stays
        // stranded at i — violating y <= |c| * x(i) by up to kFracEps
        // per class.
        const bool drains = sol.x[i] - theta <= kFracEps;
        const double ratio = drains ? 1.0 : theta / sol.x[i];
        ++moves;
        mass_moved += theta;
        // Move a proportional share of every assignment from i to d.
        // Valid: d ∈ Des(i), so every class assignable to i is
        // assignable to d.
        for (const auto& [c, k] : at_node[i]) {
          const double moved = ratio * sol.y[c][k];
          if (moved == 0.0) continue;
          sol.y[c][k] -= moved;
          // Find d's slot within class c (exists whenever the class's
          // node is an ancestor of i, hence of d... d is a descendant
          // of i ⊆ Des(k(c)), so d ∈ Des(k(c)) too).
          bool placed = false;
          for (std::size_t k2 = 0; k2 < lp.y_vars[c].size(); ++k2) {
            if (lp.y_vars[c][k2].first == d) {
              sol.y[c][k2] += moved;
              placed = true;
              break;
            }
          }
          NAT_CHECK_MSG(placed, "transform: class has no slot at descendant");
        }
        sol.x[d] += theta;
        sol.x[i] -= theta;
        if (static_cast<double>(forest.node(d).length()) - sol.x[d] <=
            kFracEps) {
          h = next[d];  // d is (effectively) full: drop it for good
        }
      }
      // Snap a sub-tolerance residue to zero so downstream
      // classification is clean.
      if (sol.x[i] <= kFracEps) sol.x[i] = 0.0;
    }
    if (h < 0) t = -1;
    // i itself becomes a candidate for its ancestors; it is an
    // ancestor of everything in its list, so it goes last.
    if (static_cast<double>(forest.node(i).length()) - sol.x[i] >
        kFracEps) {
      if (h < 0) {
        h = i;
      } else {
        next[t] = i;
      }
      t = i;
      next[i] = -1;
    }
    head[i] = h;
    tail[i] = t;
  }

  static obs::Counter& c_moves = obs::counter("at.pushdown.moves");
  static obs::Gauge& g_mass = obs::gauge("at.pushdown.mass_moved");
  c_moves.add(moves);
  g_mass.add(mass_moved);
}

std::vector<int> topmost_positive(const LaminarForest& forest,
                                  const std::vector<double>& x, double eps) {
  std::vector<int> out;
  for (int i = 0; i < forest.num_nodes(); ++i) {
    if (x[i] <= eps) continue;
    bool top = true;
    for (int a = forest.node(i).parent; a >= 0; a = forest.node(a).parent) {
      if (x[a] > eps) {
        top = false;
        break;
      }
    }
    if (top) out.push_back(i);
  }
  return out;
}

std::string check_claim1(const LaminarForest& forest,
                         const std::vector<double>& x,
                         const std::vector<int>& topmost, double eps) {
  std::ostringstream os;
  // (1a) antichain.
  for (int a : topmost) {
    for (int b : topmost) {
      if (a != b && forest.is_ancestor(a, b)) {
        os << "(1a) " << a << " is an ancestor of " << b;
        return os.str();
      }
    }
  }
  // (1b) Des(I) covers all leaves.
  std::vector<bool> covered(forest.num_nodes(), false);
  for (int i : topmost) {
    for (int d : forest.subtree(i)) covered[d] = true;
  }
  for (int i = 0; i < forest.num_nodes(); ++i) {
    if (forest.node(i).children.empty() && !covered[i]) {
      os << "(1b) leaf " << i << " not under any topmost node";
      return os.str();
    }
  }
  // (1c) positive, (1d) strict descendants full, (1e) strict ancestors 0.
  for (int i : topmost) {
    if (x[i] <= eps) {
      os << "(1c) topmost node " << i << " has x=0";
      return os.str();
    }
    for (int d : forest.subtree(i)) {
      if (d == i) continue;
      if (std::abs(x[d] - static_cast<double>(forest.node(d).length())) >
          eps) {
        os << "(1d) descendant " << d << " of " << i << " not full: x="
           << x[d] << " L=" << forest.node(d).length();
        return os.str();
      }
    }
    for (int a = forest.node(i).parent; a >= 0; a = forest.node(a).parent) {
      if (x[a] > eps) {
        os << "(1e) ancestor " << a << " of " << i << " has x>0";
        return os.str();
      }
    }
  }
  return {};
}

}  // namespace nat::at
