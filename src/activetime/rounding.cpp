#include "activetime/rounding.hpp"

#include <algorithm>
#include <cmath>

#include "obs/counters.hpp"
#include "util/check.hpp"

namespace nat::at {

std::int64_t eps_floor(double v) {
  return static_cast<std::int64_t>(std::floor(v + kFracEps));
}

std::int64_t eps_ceil(double v) {
  return static_cast<std::int64_t>(std::ceil(v - kFracEps));
}

RoundingResult round_solution(const LaminarForest& forest,
                              const std::vector<double>& x,
                              const std::vector<int>& topmost) {
  const int m = forest.num_nodes();
  NAT_CHECK(static_cast<int>(x.size()) == m);

  RoundingResult out;
  out.x_tilde.assign(m, 0);
  std::vector<bool> in_topmost(m, false);
  for (int i : topmost) in_topmost[i] = true;

  std::int64_t floors_taken = 0;  // topmost nodes floored strictly down
  std::int64_t round_ups = 0;     // Line 3 up-roundings

  // Line 1: floor on I; elsewhere x is already integral (0 or L(i)).
  for (int i = 0; i < m; ++i) {
    if (in_topmost[i]) {
      out.x_tilde[i] = eps_floor(x[i]);
      if (static_cast<double>(out.x_tilde[i]) < x[i] - kFracEps) {
        ++floors_taken;
      }
    } else {
      const std::int64_t v = eps_floor(x[i]);
      NAT_CHECK_MSG(std::abs(x[i] - static_cast<double>(v)) < 1e-4,
                    "node " << i << " outside I is not integral: " << x[i]);
      out.x_tilde[i] = v;
    }
  }

  // Anc(I), bottom to top (depth descending; inclusive of I itself).
  std::vector<int> anc;
  {
    std::vector<bool> seen(m, false);
    for (int i : topmost) {
      for (int a = i; a >= 0; a = forest.node(a).parent) {
        if (seen[a]) break;
        seen[a] = true;
        anc.push_back(a);
      }
    }
    std::sort(anc.begin(), anc.end(), [&](int a, int b) {
      return forest.depth(a) > forest.depth(b);
    });
  }

  for (int i : anc) {
    const std::vector<int> des = forest.subtree(i);
    double frac_sum = 0.0;
    std::int64_t rounded_sum = 0;
    // Nodes of Des(i) still strictly below their fractional value,
    // i.e. floored I-nodes with a fractional part.
    std::vector<int> flooreds;
    for (int d : des) {
      frac_sum += x[d];
      rounded_sum += out.x_tilde[d];
      if (static_cast<double>(out.x_tilde[d]) < x[d] - kFracEps) {
        flooreds.push_back(d);
      }
    }
    while (1.8 * frac_sum >= static_cast<double>(rounded_sum) + 1.0 -
                                 kFracEps &&
           !flooreds.empty()) {
      const int d = flooreds.back();
      flooreds.pop_back();
      const std::int64_t up = eps_ceil(x[d]);
      rounded_sum += up - out.x_tilde[d];
      out.x_tilde[d] = up;
      ++round_ups;
    }
  }

  double frac_total = 0.0;
  for (int i = 0; i < m; ++i) {
    NAT_CHECK_MSG(out.x_tilde[i] >= 0 &&
                      out.x_tilde[i] <= forest.node(i).length(),
                  "rounded count out of range at node " << i);
    out.total += out.x_tilde[i];
    frac_total += x[i];
  }

  static obs::Counter& c_floors = obs::counter("at.rounding.floors");
  static obs::Counter& c_ups = obs::counter("at.rounding.round_ups");
  static obs::Gauge& g_slack = obs::gauge("at.rounding.budget_slack");
  c_floors.add(floors_taken);
  c_ups.add(round_ups);
  // Unused headroom of the Lemma 3.3 budget: (9/5)·x([m]) − x~([m]).
  g_slack.set(1.8 * frac_total - static_cast<double>(out.total));
  return out;
}

}  // namespace nat::at
