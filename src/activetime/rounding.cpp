#include "activetime/rounding.hpp"

#include <algorithm>
#include <cmath>

#include "numeric/rational.hpp"
#include "obs/counters.hpp"
#include "util/check.hpp"

namespace nat::at {

namespace {
// Fault injection for the differential fuzzer (see rounding.hpp).
bool g_budget_fault = false;
}  // namespace

void set_rounding_budget_fault(bool on) { g_budget_fault = on; }
bool rounding_budget_fault() { return g_budget_fault; }

std::int64_t eps_floor(double v) {
  return static_cast<std::int64_t>(std::floor(v + kFracEps));
}

std::int64_t eps_ceil(double v) {
  return static_cast<std::int64_t>(std::ceil(v - kFracEps));
}

RoundingResult round_solution(const LaminarForest& forest,
                              const std::vector<double>& x,
                              const std::vector<int>& topmost) {
  const int m = forest.num_nodes();
  NAT_CHECK(static_cast<int>(x.size()) == m);

  RoundingResult out;
  out.x_tilde.assign(m, 0);
  std::vector<bool> in_topmost(m, false);
  for (int i : topmost) in_topmost[i] = true;

  std::int64_t floors_taken = 0;  // topmost nodes floored strictly down
  std::int64_t round_ups = 0;     // Line 3 up-roundings
  const std::int64_t overshoot_limit = rounding_budget_fault() ? 1 : 0;

  // Line 1: floor on I; elsewhere x is already integral (0 or L(i)).
  for (int i = 0; i < m; ++i) {
    if (in_topmost[i]) {
      out.x_tilde[i] = eps_floor(x[i]);
      if (static_cast<double>(out.x_tilde[i]) < x[i] - kFracEps) {
        ++floors_taken;
      }
    } else {
      const std::int64_t v = eps_floor(x[i]);
      // Exact-rational integrality check. The tolerance is kFracEps —
      // the pipeline-wide snapping radius that eps_floor/eps_ceil and
      // the push-down transform already commit to — not an ad-hoc
      // slack: push_down_transform only ever leaves residues below
      // kFracEps on nodes it drains or fills, so any larger deviation
      // on a node outside I is genuine drift and must be rejected, not
      // silently floored to the wrong integer.
      const num::Rational drift =
          num::Rational::from_double_exact(x[i]) - num::Rational(v);
      const num::Rational tol = num::Rational::from_double_exact(kFracEps);
      NAT_CHECK_MSG(drift <= tol && -drift <= tol,
                    "node " << i << " outside I is not integral: x=" << x[i]
                            << " (exact drift " << drift.to_string()
                            << " exceeds kFracEps)");
      out.x_tilde[i] = v;
    }
  }

  // Anc(I), bottom to top (depth descending; inclusive of I itself).
  std::vector<int> anc;
  {
    std::vector<bool> seen(m, false);
    for (int i : topmost) {
      for (int a = i; a >= 0; a = forest.node(a).parent) {
        if (seen[a]) break;
        seen[a] = true;
        anc.push_back(a);
      }
    }
    std::sort(anc.begin(), anc.end(), [&](int a, int b) {
      return forest.depth(a) > forest.depth(b);
    });
  }

  for (int i : anc) {
    const std::vector<int> des = forest.subtree(i);
    double frac_sum = 0.0;
    std::int64_t rounded_sum = 0;
    // Nodes of Des(i) still strictly below their fractional value,
    // i.e. floored I-nodes with a fractional part.
    std::vector<int> flooreds;
    for (int d : des) {
      frac_sum += x[d];
      rounded_sum += out.x_tilde[d];
      if (static_cast<double>(out.x_tilde[d]) < x[d] - kFracEps) {
        flooreds.push_back(d);
      }
    }
    // Algorithm 1's while-condition: 9x/5 >= x~ + 1. The injected
    // fault (rounding.hpp) makes each round-up open one slot more than
    // the "+1" the condition reserved — an off-by-one between the 9/5
    // budget accounting and the amount actually rounded, which the
    // exact verify layer must catch (never set in production).
    const std::int64_t overshoot = rounding_budget_fault() ? 1 : 0;
    while (1.8 * frac_sum >=
               static_cast<double>(rounded_sum) + 1.0 - kFracEps &&
           !flooreds.empty()) {
      const int d = flooreds.back();
      flooreds.pop_back();
      const std::int64_t up = eps_ceil(x[d]) + overshoot;
      rounded_sum += up - out.x_tilde[d];
      out.x_tilde[d] = up;
      ++round_ups;
    }
  }

  double frac_total = 0.0;
  for (int i = 0; i < m; ++i) {
    // The injected-fault overshoot may exceed L(i) by one; the verify
    // layer, not this internal assert, is the component under test.
    NAT_CHECK_MSG(out.x_tilde[i] >= 0 &&
                      out.x_tilde[i] <=
                          forest.node(i).length() + overshoot_limit,
                  "rounded count out of range at node " << i);
    out.total += out.x_tilde[i];
    frac_total += x[i];
  }

  static obs::Counter& c_floors = obs::counter("at.rounding.floors");
  static obs::Counter& c_ups = obs::counter("at.rounding.round_ups");
  static obs::Gauge& g_slack = obs::gauge("at.rounding.budget_slack");
  c_floors.add(floors_taken);
  c_ups.add(round_ups);
  // Unused headroom of the Lemma 3.3 budget: (9/5)·x([m]) − x~([m]).
  g_slack.set(1.8 * frac_total - static_cast<double>(out.total));
  return out;
}

}  // namespace nat::at
