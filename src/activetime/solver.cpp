#include "activetime/solver.hpp"

#include <algorithm>

#include "activetime/feasibility.hpp"
#include "activetime/lp_transform.hpp"
#include "activetime/oracle.hpp"
#include "activetime/rounding.hpp"
#include "lp/backend.hpp"
#include "lp/bounded_simplex.hpp"
#include "obs/counters.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "verify/verify.hpp"

namespace nat::at {

int repair_open_counts(const LaminarForest& forest, FeasibilityOracle& oracle,
                       std::vector<Time>& counts) {
  int repairs = 0;
  std::int64_t budget = 0;  // remaining closed slots; bounds the loop
  for (int i = 0; i < forest.num_nodes(); ++i) {
    budget += forest.node(i).length() - counts[i];
  }
  static obs::Counter& c_skips = obs::counter("at.oracle.cut_skips");
  while (!oracle.feasible(counts)) {
    // Prefer an increment that fixes feasibility outright; otherwise
    // open any closable slot — all-open is feasible, so this makes
    // progress toward a feasible vector. The oracle's min-cut
    // certificate rules most regions out without a probe: an increment
    // that does not grow the certified cut cannot restore feasibility.
    int chosen = -1;
    for (int i = 0; i < forest.num_nodes(); ++i) {
      if (counts[i] >= forest.node(i).length()) continue;
      if (chosen < 0) chosen = i;
      if (!oracle.increment_can_help(i)) {
        c_skips.add(1);
        continue;
      }
      if (oracle.feasible_if_incremented(i)) {
        chosen = i;
        break;
      }
    }
    NAT_CHECK_MSG(chosen >= 0, "repair: no region can be opened further");
    ++counts[chosen];
    ++repairs;
    NAT_CHECK_MSG(repairs <= budget, "repair loop failed to converge");
  }
  return repairs;
}

NestedSolveResult solve_nested(const Instance& instance,
                               const NestedSolverOptions& options) {
  NestedSolveResult result;
  if (instance.jobs.empty()) return result;

  obs::Span span_total("solve_nested");

  LaminarForest forest = [&] {
    obs::Span span("solve_nested/tree_build");
    LaminarForest f = LaminarForest::build(instance);
    f.canonicalize();
    return f;
  }();

  // One incremental oracle serves the precheck, repair, and trim: the
  // network is built once and each query warm-starts from the last.
  FeasibilityOracle oracle(forest);
  oracle.set_cancel(options.cancel);

  // Feasibility of the instance itself (all regions fully open).
  {
    obs::Span span("solve_nested/feasibility_precheck");
    std::vector<Time> full(forest.num_nodes());
    for (int i = 0; i < forest.num_nodes(); ++i) {
      full[i] = forest.node(i).length();
    }
    NAT_CHECK_MSG(oracle.feasible(full), "instance is infeasible");
  }

  StrongLp lp = [&] {
    obs::Span span("solve_nested/lp_build");
    return build_strong_lp(forest, options.lp);
  }();
  lp::Solution lps = [&] {
    obs::Span span("solve_nested/lp_solve");
    lp::SolveOptions lp_options;
    lp_options.cancel = options.cancel;
    return options.bounded_lp_backend ? lp::solve_bounded(lp.model, lp_options)
                                      : lp::solve_auto(lp.model, lp_options);
  }();
  NAT_CHECK_MSG(lps.status == lp::Status::kOptimal,
                "strong LP did not solve: " << lp::to_string(lps.status));
  result.lp_value = lps.objective;
  result.lp_iterations = lps.iterations;

  FractionalSolution frac = unpack(lp, lps);

  const verify::VerifyLevel vlevel =
      verify::resolve_level(options.verify_level);
  if (vlevel == verify::VerifyLevel::kFull) {
    obs::Span span("solve_nested/verify_lp");
    verify::require("lp",
                    verify::check_lp_solution(forest, lp, frac,
                                              result.lp_value,
                                              options.verify_radius));
  }

  if (options.naive_rounding) {
    result.x_rounded.resize(forest.num_nodes());
    for (int i = 0; i < forest.num_nodes(); ++i) {
      result.x_rounded[i] =
          std::min<Time>(eps_ceil(frac.x[i]), forest.node(i).length());
    }
    result.x_fractional = frac.x;
  } else {
    std::vector<double> x_before;
    if (vlevel == verify::VerifyLevel::kFull) x_before = frac.x;
    {
      obs::Span span("solve_nested/push_down");
      push_down_transform(forest, lp, frac);
    }
    if (vlevel == verify::VerifyLevel::kFull) {
      obs::Span span("solve_nested/verify_push_down");
      verify::require("push_down",
                      verify::check_push_down(forest, x_before, frac.x,
                                              options.verify_radius));
      // The transform must keep the solution LP-feasible (Lemma 3.1
      // moves volume alongside the opened mass).
      verify::require("lp_transformed",
                      verify::check_lp_solution(forest, lp, frac,
                                                result.lp_value,
                                                options.verify_radius));
    }
    result.x_fractional = frac.x;
    result.topmost = topmost_positive(forest, frac.x);
    {
      obs::Span span("solve_nested/rounding");
      RoundingResult rounded =
          round_solution(forest, frac.x, result.topmost);
      result.x_rounded = std::move(rounded.x_tilde);
    }
    if (vlevel == verify::VerifyLevel::kFull) {
      obs::Span span("solve_nested/verify_rounding");
      verify::require("rounding",
                      verify::check_rounding(forest, frac.x,
                                             result.x_rounded,
                                             result.topmost,
                                             options.verify_radius));
    }
  }

  {
    obs::Span span("solve_nested/repair");
    result.repairs = repair_open_counts(forest, oracle, result.x_rounded);
    static obs::Counter& c_repairs = obs::counter("at.solver.repairs");
    c_repairs.add(result.repairs);
  }

  if (options.trim_rounded) {
    // One pass suffices for minimality: feasibility is monotone in the
    // counts, so a slot that cannot be closed now never becomes
    // closable after further removals.
    obs::Span span("solve_nested/trim");
    for (int i = 0; i < forest.num_nodes(); ++i) {
      while (result.x_rounded[i] > 0) {
        --result.x_rounded[i];
        if (oracle.feasible(result.x_rounded)) continue;
        ++result.x_rounded[i];
        break;
      }
    }
  }

  obs::Span span_extract("solve_nested/extract");
  auto schedule = schedule_with_counts(forest, result.x_rounded);
  NAT_CHECK_MSG(schedule.has_value(), "post-repair extraction failed");
  result.schedule = std::move(*schedule);
  // The canonical forest only ever shrinks job windows, so the
  // schedule is feasible for the original instance too.
  validate_schedule(instance, result.schedule);
  result.active_slots = result.schedule.active_slots();
  if (vlevel != verify::VerifyLevel::kOff) {
    obs::Span span("solve_nested/verify_schedule");
    std::int64_t open_budget = 0;
    for (Time t : result.x_rounded) open_budget += t;
    verify::require("schedule",
                    verify::check_schedule(instance, result.schedule,
                                           result.active_slots,
                                           open_budget));
  }
  return result;
}

const char* to_string(Backend backend) {
  switch (backend) {
    case Backend::kNested: return "nested";
    case Backend::kGeneral: return "general";
    case Backend::kGreedy: return "greedy";
  }
  return "?";
}

ActiveTimeResult solve_active_time(const Instance& instance,
                                   const ActiveTimeOptions& options) {
  ActiveTimeResult result;
  if (instance.is_laminar()) {
    static obs::Counter& c = obs::counter("at.dispatch.nested");
    c.add(1);
    NestedSolverOptions nested = options.nested;
    if (options.cancel != nullptr) nested.cancel = options.cancel;
    NestedSolveResult sub = solve_nested(instance, nested);
    result.backend = Backend::kNested;
    result.schedule = std::move(sub.schedule);
    result.active_slots = sub.active_slots;
    result.lp_value = sub.lp_value;
    result.repairs = sub.repairs;
    result.lp_iterations = sub.lp_iterations;
    return result;
  }
  GeneralSolverOptions general = options.general;
  if (options.cancel != nullptr) general.cancel = options.cancel;
  GeneralSolveResult sub = solve_general(instance, general);
  if (sub.lp_failed) {
    static obs::Counter& c = obs::counter("at.dispatch.greedy");
    c.add(1);
    result.backend = Backend::kGreedy;
  } else {
    static obs::Counter& c = obs::counter("at.dispatch.general");
    c.add(1);
    result.backend = Backend::kGeneral;
  }
  result.schedule = std::move(sub.schedule);
  result.active_slots = sub.active_slots;
  result.lp_value = sub.lp_value;
  result.repairs = sub.repairs;
  result.lp_iterations = sub.lp_iterations;
  return result;
}

double strong_lp_value(const Instance& instance,
                       const StrongLpOptions& options) {
  if (instance.jobs.empty()) return 0.0;
  LaminarForest forest = LaminarForest::build(instance);
  forest.canonicalize();
  StrongLp lp = build_strong_lp(forest, options);
  lp::Solution lps = lp::solve_auto(lp.model);
  NAT_CHECK_MSG(lps.status == lp::Status::kOptimal,
                "strong LP did not solve: " << lp::to_string(lps.status));
  return lps.objective;
}

}  // namespace nat::at
