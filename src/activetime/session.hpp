// Incremental delta re-solve engine (docs/INCREMENTAL.md).
//
// A SolverSession owns an instance plus every derived solver artifact —
// laminar forests, strengthened LP models, sparse-simplex bases, warm
// feasibility-oracle networks, rounded counts, schedule fragments — and
// accepts typed deltas (AddJob / RemoveJob / ExtendWindow /
// ShrinkWindow / Retime), re-solving only what a delta invalidates.
//
// Localization exploits that the whole 9/5 pipeline is block-separable
// per *root window group*: jobs whose windows land in disjoint maximal
// intervals never share an LP row, an oracle arc, a push-down move, or
// a rounding decision. The session partitions the instance into those
// groups, caches each group's solve keyed by its content, and after a
// delta re-solves only groups whose content changed — warm-starting the
// dirty group's LP from the displaced group's exported basis, mapped
// across models by content descriptors.
//
// Determinism contract: a group is solved by the canonicalizing sparse
// simplex (lp/sparse_simplex.hpp), which terminates at the same optimal
// vertex whether it started cold or warm. Downstream stages are
// deterministic functions of that vertex, so an incremental re-solve is
// BIT-IDENTICAL to a fresh SolverSession built on the same instance —
// tests/test_session.cpp asserts this on every step of randomized delta
// walks, and bench/bench_delta.cpp re-asserts it while timing.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <variant>
#include <vector>

#include "activetime/instance.hpp"
#include "activetime/lp_relaxation.hpp"
#include "activetime/schedule.hpp"
#include "activetime/solver.hpp"
#include "lp/sparse_simplex.hpp"
#include "util/cancel.hpp"

namespace nat::at {

// Typed deltas. Job indices refer to the session's *current* job list
// (insertion order; RemoveJob shifts later indices down by one, like a
// vector erase). Window edits must nest — ExtendWindow's new window
// must contain the old one, ShrinkWindow's must be contained in it;
// violations throw util::CheckError and roll the session back. The
// instance itself may be non-laminar: groups whose windows cross
// dispatch to the general 2-approx backend (solve_general) while
// laminar groups keep the 9/5 pipeline and its warm-start machinery.
struct AddJob {
  Job job;
};
struct RemoveJob {
  int job = -1;
};
struct ExtendWindow {
  int job = -1;
  Interval window;
};
struct ShrinkWindow {
  int job = -1;
  Interval window;
};
// Replaces a job's processing-time uncertainty box [p_lo, p_hi]
// (docs/ROBUST.md) — widening or narrowing it around the unchanged
// nominal p; lo = hi = 0 clears the box, turning the job back into a
// point job. Instance::validate() enforces the box invariants after
// the edit (and rolls back on violation, like every delta).
struct Retime {
  int job = -1;
  std::int64_t processing_lo = 0;
  std::int64_t processing_hi = 0;
};
using Delta =
    std::variant<AddJob, RemoveJob, ExtendWindow, ShrinkWindow, Retime>;

struct SessionOptions {
  StrongLpOptions lp;
  // Validate every assembled schedule against the current instance
  // (cheap; on by default because sessions are long-lived state).
  bool validate_schedules = true;
  // Polled at simplex pivots and oracle queries of every group solve.
  const util::CancelToken* cancel = nullptr;
};

/// Cumulative session statistics (reset never; diff across calls).
struct SessionStats {
  std::int64_t solves = 0;          // solve()/apply() calls that resolved
  std::int64_t groups_total = 0;    // groups seen across all resolves
  std::int64_t groups_resolved = 0; // groups actually re-solved
  std::int64_t groups_reused = 0;   // cache hits (untouched groups)
  std::int64_t oracle_builds = 0;   // flow networks built by this session
  // Warm-start ladder, summed over group LP solves (lp.sparse.warm_*).
  std::int64_t lp_warm_hits = 0;
  std::int64_t lp_warm_repairs = 0;
  std::int64_t lp_cold_fallbacks = 0;
};

struct SessionResult {
  Schedule schedule;  // indexed by current job positions
  std::int64_t active_slots = 0;
  double lp_value = 0.0;  // sum of the group LP optima
  int repairs = 0;
  // Most-degraded backend across the groups of this solve: kNested when
  // every group was laminar (the 9/5 pipeline), kGeneral when any group
  // needed the 2-approx, kGreedy when any group's LP failed.
  Backend backend = Backend::kNested;
};

class SolverSession {
 public:
  explicit SolverSession(Instance initial, SessionOptions options = {});

  /// Result for the current instance; solves lazily, then caches.
  const SessionResult& solve();

  /// Applies one delta and re-solves incrementally. On any failure
  /// (invalid delta, infeasible result) the session rolls back to its
  /// pre-delta instance and result and rethrows. A delta that makes the
  /// instance non-laminar is fine: the crossing groups dispatch to the
  /// general 2-approx backend.
  const SessionResult& apply(const Delta& delta);

  /// Re-points the cancel token polled by subsequent solve()/apply()
  /// calls (nullptr = none). Long-lived daemon sessions overlay one
  /// per-request token this way; a cancellation mid-apply rolls the
  /// session back like any other failure.
  void set_cancel(const util::CancelToken* cancel) {
    options_.cancel = cancel;
  }

  const Instance& instance() const { return instance_; }
  const SessionStats& stats() const { return stats_; }
  int num_jobs() const { return static_cast<int>(instance_.jobs.size()); }

 private:
  /// One root window group's cached solve.
  struct GroupSolve {
    std::vector<Job> jobs;  // group content, in current-instance order
    Interval window{0, 0};  // union of the member windows
    std::vector<std::vector<Time>> slots;  // per member, sorted
    std::int64_t active_slots = 0;
    double lp_value = 0.0;
    int repairs = 0;
    // Which pipeline solved this group (laminar groups keep the 9/5
    // path and its warm-basis machinery; crossing groups dispatch to
    // solve_general and export no basis).
    Backend backend = Backend::kNested;
    lp::Basis basis;                     // exported optimal basis
    std::vector<std::string> var_keys;   // content key per LP variable
  };

  void resolve();
  GroupSolve solve_group(const std::vector<int>& members,
                         const GroupSolve* hint);

  Instance instance_;
  SessionOptions options_;
  SessionStats stats_;
  SessionResult result_;
  bool solved_ = false;
  // Content-keyed cache of the latest resolve's groups. Keys hash the
  // group's (g, jobs) content; collisions are disambiguated by storing
  // the jobs and comparing on hit.
  std::unordered_map<std::uint64_t, GroupSolve> cache_;
};

/// Splits job indices into root window groups: connected components of
/// window overlap, each a maximal union interval. Groups are ordered by
/// window start; members keep ascending index order. Exposed for tests
/// and the delta fuzz family.
std::vector<std::vector<int>> window_groups(const Instance& instance);

}  // namespace nat::at
