#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace nat::util {

ThreadPool::ThreadPool(std::size_t threads)
    : default_group_(std::make_shared<detail::GroupState>()) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::enqueue(const std::shared_ptr<detail::GroupState>& group,
                         std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    NAT_CHECK_MSG(!stop_, "submit after shutdown");
    {
      // Count the task before it becomes runnable so a join started
      // concurrently cannot miss it. Group mutexes are only ever taken
      // while holding mu_ or holding nothing, so the nesting is safe.
      std::lock_guard glk(group->mu);
      ++group->pending;
    }
    queue_.emplace(group, std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::Group::submit(std::function<void()> task) {
  pool_.enqueue(state_, std::move(task));
}

namespace {

void wait_group(detail::GroupState& state, bool rethrow) {
  std::unique_lock lk(state.mu);
  state.cv_done.wait(lk, [&state] { return state.pending == 0; });
  if (!rethrow) return;
  if (state.first_error) {
    std::exception_ptr error = std::exchange(state.first_error, nullptr);
    lk.unlock();
    std::rethrow_exception(error);
  }
}

}  // namespace

void ThreadPool::Group::wait() { wait_group(*state_, /*rethrow=*/true); }

ThreadPool::Group::~Group() { wait_group(*state_, /*rethrow=*/false); }

void ThreadPool::submit(std::function<void()> task) {
  enqueue(default_group_, std::move(task));
}

ThreadPool::Stats ThreadPool::stats() const {
  std::lock_guard lk(mu_);
  return Stats{queue_.size(), in_flight_};
}

void ThreadPool::wait_idle() { wait_group(*default_group_, /*rethrow=*/true); }

namespace {
thread_local bool tl_in_worker = false;
}  // namespace

bool ThreadPool::in_worker() { return tl_in_worker; }

void ThreadPool::worker_loop() {
  tl_in_worker = true;
  for (;;) {
    std::shared_ptr<detail::GroupState> group;
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      group = std::move(queue_.front().first);
      task = std::move(queue_.front().second);
      queue_.pop();
      // Moved from "queued" to "in flight" in the same critical
      // section, so stats() never loses the task between the two.
      ++in_flight_;
    }
    bool skip;
    {
      std::lock_guard glk(group->mu);
      skip = group->first_error != nullptr;
    }
    std::exception_ptr error;
    if (!skip) {
      try {
        task();
      } catch (...) {
        error = std::current_exception();
      }
    }
    // Destroy the task (and anything it captured) before signalling
    // completion: a joiner may free captured state as soon as the
    // group drains.
    task = nullptr;
    {
      std::lock_guard lk(mu_);
      --in_flight_;
    }
    {
      std::lock_guard glk(group->mu);
      if (error && !group->first_error) group->first_error = std::move(error);
      if (--group->pending == 0) group->cv_done.notify_all();
    }
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  NAT_CHECK(grain >= 1);
  if (begin >= end) return;
  // Single worker, tiny range, or nested call from inside a worker
  // (submitting + joining there would deadlock): run inline.
  if (pool.thread_count() == 1 || end - begin <= grain ||
      ThreadPool::in_worker()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  ThreadPool::Group group(pool);
  for (std::size_t chunk = begin; chunk < end; chunk += grain) {
    const std::size_t lo = chunk;
    const std::size_t hi = std::min(end, chunk + grain);
    group.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  group.wait();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for(global_pool(), begin, end, body, grain);
}

}  // namespace nat::util
