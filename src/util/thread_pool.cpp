#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace nat::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lk(mu_);
    stop_ = true;
  }
  cv_task_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  {
    std::lock_guard lk(mu_);
    NAT_CHECK_MSG(!stop_, "submit after shutdown");
    queue_.push(std::move(task));
  }
  cv_task_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lk(mu_);
  cv_idle_.wait(lk, [this] { return queue_.empty() && in_flight_ == 0; });
}

namespace {
thread_local bool tl_in_worker = false;
}  // namespace

bool ThreadPool::in_worker() { return tl_in_worker; }

void ThreadPool::worker_loop() {
  tl_in_worker = true;
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lk(mu_);
      cv_task_.wait(lk, [this] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop();
      ++in_flight_;
    }
    task();
    {
      std::lock_guard lk(mu_);
      --in_flight_;
    }
    cv_idle_.notify_all();
  }
}

ThreadPool& global_pool() {
  static ThreadPool pool;
  return pool;
}

void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  NAT_CHECK(grain >= 1);
  if (begin >= end) return;
  // Single worker, tiny range, or nested call from inside a worker
  // (submitting + wait_idle there would deadlock): run inline.
  if (pool.thread_count() == 1 || end - begin <= grain ||
      ThreadPool::in_worker()) {
    for (std::size_t i = begin; i < end; ++i) body(i);
    return;
  }
  for (std::size_t chunk = begin; chunk < end; chunk += grain) {
    const std::size_t lo = chunk;
    const std::size_t hi = std::min(end, chunk + grain);
    pool.submit([lo, hi, &body] {
      for (std::size_t i = lo; i < hi; ++i) body(i);
    });
  }
  pool.wait_idle();
}

void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain) {
  parallel_for(global_pool(), begin, end, body, grain);
}

}  // namespace nat::util
