// Lightweight runtime-check macros used across the library.
//
// NAT_CHECK is always on (it guards library invariants and user input);
// NAT_DCHECK compiles out in NDEBUG builds and guards internal
// assumptions that are expensive to test on hot paths.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace nat::util {

/// Thrown when a NAT_CHECK fails. Distinct from std::logic_error so
/// tests can assert on violations produced by this library specifically.
class CheckError : public std::logic_error {
 public:
  explicit CheckError(const std::string& what) : std::logic_error(what) {}
};

namespace detail {
[[noreturn]] inline void check_failed(const char* expr, const char* file,
                                      int line, const std::string& msg) {
  std::ostringstream os;
  os << "check failed: " << expr << " at " << file << ':' << line;
  if (!msg.empty()) os << " — " << msg;
  throw CheckError(os.str());
}
}  // namespace detail

}  // namespace nat::util

#define NAT_CHECK(expr)                                                  \
  do {                                                                   \
    if (!(expr))                                                         \
      ::nat::util::detail::check_failed(#expr, __FILE__, __LINE__, ""); \
  } while (0)

#define NAT_CHECK_MSG(expr, msg)                                 \
  do {                                                           \
    if (!(expr)) {                                               \
      std::ostringstream nat_check_os_;                          \
      nat_check_os_ << msg;                                      \
      ::nat::util::detail::check_failed(#expr, __FILE__,         \
                                        __LINE__,                \
                                        nat_check_os_.str());    \
    }                                                            \
  } while (0)

#ifdef NDEBUG
#define NAT_DCHECK(expr) ((void)0)
#else
#define NAT_DCHECK(expr) NAT_CHECK(expr)
#endif
