// Cooperative cancellation with optional deadlines.
//
// A CancelToken is created by the owner of a unit of work (a service
// request, a batch cell, a test) and passed by pointer into the
// long-running loops underneath — simplex pivots, branch-and-bound
// nodes, the solver repair/trim loops, oracle queries. Those loops
// poll check(), which throws CancelledError once the token is
// cancelled or its deadline has passed; the exception unwinds the
// solve and the owner maps it to a structured timeout/cancel record
// (service::solve_batch) instead of losing the whole process.
//
// Thread-safety: cancel() and the polling side (cancelled() / check())
// may race freely from any thread. set_deadline()/set_timeout_ms()
// must be called before the token is shared with the workers.
//
// Cancellation is cooperative and therefore best-effort in latency:
// a solve stops at the next poll point, not instantly. Poll points are
// placed so the gap is one simplex pivot, one B&B node batch, or one
// flow query — microseconds to low milliseconds on the instances this
// repo targets (see docs/SERVICE.md).
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace nat::util {

/// Thrown by CancelToken::check(). Deliberately NOT derived from
/// CheckError: cancellation is not an invariant violation, and callers
/// that classify failures must be able to tell the two apart.
class CancelledError : public std::runtime_error {
 public:
  explicit CancelledError(const std::string& what)
      : std::runtime_error(what) {}
};

class CancelToken {
 public:
  CancelToken() = default;
  CancelToken(const CancelToken&) = delete;
  CancelToken& operator=(const CancelToken&) = delete;

  /// Requests cancellation. Thread-safe; idempotent.
  void cancel() noexcept { cancelled_.store(true, std::memory_order_relaxed); }

  /// Arms a deadline. Call before sharing the token with workers.
  void set_deadline(std::chrono::steady_clock::time_point deadline) {
    deadline_ = deadline;
    has_deadline_ = true;
  }

  /// Arms a deadline `ms` milliseconds from now. ms <= 0 means the
  /// deadline has already passed (useful in tests). Saturates: a `ms`
  /// large enough that now + ms would overflow the clock's epoch
  /// (e.g. --timeout-ms INT64_MAX/2) arms time_point::max() instead of
  /// wrapping into the past and cancelling everything instantly.
  void set_timeout_ms(std::int64_t ms) {
    using clock = std::chrono::steady_clock;
    const clock::time_point now = clock::now();
    const clock::duration headroom = clock::time_point::max() - now;
    const auto headroom_ms =
        std::chrono::duration_cast<std::chrono::milliseconds>(headroom);
    if (ms > 0 && std::chrono::milliseconds(ms) >= headroom_ms) {
      set_deadline(clock::time_point::max());
      return;
    }
    set_deadline(now + std::chrono::milliseconds(ms));
  }

  bool deadline_armed() const { return has_deadline_; }

  /// The armed deadline; only meaningful when deadline_armed().
  std::chrono::steady_clock::time_point deadline() const { return deadline_; }

  /// Sentinel for remaining_ms() when no deadline is armed.
  static constexpr std::int64_t kNoDeadline =
      std::numeric_limits<std::int64_t>::max();

  /// Milliseconds until the armed deadline — negative once it has
  /// passed, kNoDeadline when none is armed. Service layers use this to
  /// report time-left in timeout records without touching the clock
  /// math themselves.
  std::int64_t remaining_ms() const {
    if (!has_deadline_) return kNoDeadline;
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               deadline_ - std::chrono::steady_clock::now())
        .count();
  }

  /// True only for an explicit cancel() — a passed deadline does not
  /// set this. Lets owners tell "cancelled by the caller" apart from
  /// "timed out" when building terminal records.
  bool cancel_requested() const {
    return cancelled_.load(std::memory_order_relaxed);
  }

  /// True once cancel() was called or the deadline has passed.
  bool cancelled() const {
    if (cancelled_.load(std::memory_order_relaxed)) return true;
    return has_deadline_ && std::chrono::steady_clock::now() >= deadline_;
  }

  /// Throws CancelledError when cancelled. Loops poll this.
  void check() const {
    if (cancelled_.load(std::memory_order_relaxed)) {
      throw CancelledError("cancelled: cancel() was called");
    }
    if (has_deadline_ && std::chrono::steady_clock::now() >= deadline_) {
      throw CancelledError("cancelled: deadline exceeded");
    }
  }

 private:
  std::atomic<bool> cancelled_{false};
  bool has_deadline_ = false;
  std::chrono::steady_clock::time_point deadline_{};
};

/// Poll helper for pointer-carrying loops: no-op on nullptr.
inline void poll_cancel(const CancelToken* token) {
  if (token != nullptr) token->check();
}

}  // namespace nat::util
