// Fixed-size thread pool and a blocking parallel_for built on it.
//
// Experiment sweeps run many independent (instance, solver) cells; the
// pool lets bench binaries saturate the machine while keeping results
// deterministic: work is partitioned by index, never by arrival order,
// and each cell derives its RNG stream from its own index.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace nat::util {

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Enqueue a task. Tasks must not throw; exceptions terminate.
  void submit(std::function<void()> task);

  /// Block until every submitted task has finished.
  void wait_idle();

  /// True when the calling thread is a pool worker (of any pool).
  /// parallel_for uses this to run nested invocations inline instead
  /// of deadlocking on wait_idle() from inside a task.
  static bool in_worker();

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mu_;
  std::condition_variable cv_task_;   // signalled when work arrives / stop
  std::condition_variable cv_idle_;   // signalled when a task completes
  std::size_t in_flight_ = 0;
  bool stop_ = false;
};

/// Process-wide pool for experiment sweeps (created on first use).
ThreadPool& global_pool();

/// Runs body(i) for i in [begin, end) across the pool and blocks until
/// all iterations complete. `grain` iterations are batched per task to
/// amortize queue overhead. Safe to call from one thread at a time per
/// pool; called from inside a pool worker (nested parallelism) it runs
/// inline, so library code may use it without knowing its caller.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// parallel_for on the process-wide global_pool().
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace nat::util
