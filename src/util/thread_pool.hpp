// Fixed-size thread pool with per-call completion groups and a blocking
// parallel_for built on it.
//
// Experiment sweeps and the batch service run many independent
// (instance, solver) cells; the pool lets bench binaries and
// service::solve_batch saturate the machine while keeping results
// deterministic: work is partitioned by index, never by arrival order,
// and each cell derives its RNG stream from its own index.
//
// Concurrency contract (see docs/SERVICE.md):
//  * Tasks may throw. An exception leaving a task is captured; the
//    first one (in completion order) is rethrown at the join point —
//    Group::wait() for group submissions, wait_idle() for plain
//    submit(). The pool itself never terminates and never leaks
//    in-flight accounting on a throw.
//  * Any number of threads may drive the same pool concurrently. Each
//    Group (and each parallel_for call, which uses a private Group)
//    tracks its own completion, so concurrent callers neither
//    over-synchronize nor steal each other's join.
//  * parallel_for called from inside a pool worker (nested
//    parallelism) runs inline on the calling worker, so library code
//    may use it without knowing its caller.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <queue>
#include <thread>
#include <utility>
#include <vector>

namespace nat::util {

namespace detail {
/// Shared completion state of one task group. Tasks hold a shared_ptr,
/// so the state outlives the Group object that created it.
struct GroupState {
  std::mutex mu;
  std::condition_variable cv_done;
  std::size_t pending = 0;
  std::exception_ptr first_error;
};
}  // namespace detail

class ThreadPool {
 public:
  /// Creates `threads` workers; 0 means hardware_concurrency (min 1).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  std::size_t thread_count() const { return workers_.size(); }

  /// Queue/in-flight occupancy of the pool at one instant.
  struct Stats {
    std::size_t queue_depth = 0;  // submitted, not yet started
    std::size_t in_flight = 0;    // currently executing on a worker
  };

  /// Consistent snapshot taken under the pool lock: a task is counted
  /// in exactly one of queue_depth / in_flight from submit() until its
  /// body has returned (the queued->in-flight handoff happens in one
  /// critical section), so queue_depth + in_flight never over- or
  /// under-counts live work. Safe to call from any thread, including
  /// concurrently with submits and joins (admission control and the
  /// at.daemon.* gauges poll this).
  Stats stats() const;

  /// A per-call completion group: submit any number of tasks, then
  /// wait() for exactly those tasks. Tasks that throw are captured;
  /// wait() rethrows the first captured exception after every task of
  /// the group has finished. Once a task of the group has thrown,
  /// queued-but-unstarted tasks of the same group are skipped (they
  /// still count as finished for wait()).
  ///
  /// The destructor blocks until the group's tasks are done (without
  /// rethrowing), so a Group can be stack-allocated safely even when
  /// submission itself throws.
  class Group {
   public:
    explicit Group(ThreadPool& pool)
        : pool_(pool), state_(std::make_shared<detail::GroupState>()) {}
    ~Group();
    Group(const Group&) = delete;
    Group& operator=(const Group&) = delete;

    void submit(std::function<void()> task);

    /// Blocks until every submitted task has finished, then rethrows
    /// the first captured exception, if any (clearing it, so a reused
    /// group starts clean).
    void wait();

   private:
    ThreadPool& pool_;
    std::shared_ptr<detail::GroupState> state_;
  };

  /// Enqueue a detached task on the pool-wide default group. Tasks may
  /// throw; join with wait_idle(). Concurrent drivers should prefer a
  /// private Group (or parallel_for) over the shared default group.
  void submit(std::function<void()> task);

  /// Blocks until every plain-submit() task has finished, then
  /// rethrows the first exception captured since the last wait_idle().
  void wait_idle();

  /// True when the calling thread is a pool worker (of any pool).
  /// parallel_for uses this to run nested invocations inline instead
  /// of deadlocking on a self-join from inside a task.
  static bool in_worker();

 private:
  void enqueue(const std::shared_ptr<detail::GroupState>& group,
               std::function<void()> task);
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::pair<std::shared_ptr<detail::GroupState>,
                       std::function<void()>>>
      queue_;
  mutable std::mutex mu_;
  std::size_t in_flight_ = 0;  // tasks dequeued, not yet finished
  std::condition_variable cv_task_;  // signalled when work arrives / stop
  bool stop_ = false;
  std::shared_ptr<detail::GroupState> default_group_;
};

/// Process-wide pool for experiment sweeps (created on first use).
ThreadPool& global_pool();

/// Runs body(i) for i in [begin, end) across the pool and blocks until
/// all iterations complete. `grain` iterations are batched per task to
/// amortize queue overhead. Any number of threads may call this
/// concurrently on the same pool; each call joins exactly its own
/// iterations. Called from inside a pool worker (nested parallelism)
/// it runs inline.
///
/// If body throws, the first exception is rethrown to the caller on
/// both the pooled and the inline path; iterations scheduled after the
/// failure may be skipped, and the call does not return before every
/// started iteration has finished.
void parallel_for(ThreadPool& pool, std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

/// parallel_for on the process-wide global_pool().
void parallel_for(std::size_t begin, std::size_t end,
                  const std::function<void(std::size_t)>& body,
                  std::size_t grain = 1);

}  // namespace nat::util
