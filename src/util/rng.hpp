// Deterministic pseudo-random number generation for experiments.
//
// All generators and sweeps in this repository take explicit seeds so
// every table in EXPERIMENTS.md is reproducible bit-for-bit. We use
// xoshiro256++ (public-domain algorithm by Blackman & Vigna) seeded via
// splitmix64, rather than std::mt19937, so that streams are cheap to
// fork per instance inside parallel sweeps.
#pragma once

#include <cstdint>
#include <limits>

#include "util/check.hpp"

namespace nat::util {

/// splitmix64 step; used for seeding and for deriving per-task seeds.
constexpr std::uint64_t splitmix64(std::uint64_t& state) {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

/// xoshiro256++ generator. Satisfies UniformRandomBitGenerator.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x2545F4914F6CDD1DULL) {
    std::uint64_t sm = seed;
    for (auto& w : s_) w = splitmix64(sm);
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() {
    const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [lo, hi] inclusive. Uses Lemire-style rejection
  /// to avoid modulo bias.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi) {
    NAT_CHECK_MSG(lo <= hi, "uniform_int: lo=" << lo << " hi=" << hi);
    const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
    if (range == 0) return static_cast<std::int64_t>((*this)());  // full range
    const std::uint64_t reject_above = max() - max() % range;
    std::uint64_t v;
    do {
      v = (*this)();
    } while (v >= reject_above);
    return lo + static_cast<std::int64_t>(v % range);
  }

  /// Uniform double in [0, 1).
  double uniform01() {
    return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with success probability p.
  bool chance(double p) { return uniform01() < p; }

  /// Derive an independent child stream; useful for per-instance seeds
  /// in parallel sweeps (same child index => same stream, regardless of
  /// scheduling).
  Rng fork(std::uint64_t index) {
    std::uint64_t sm = s_[0] ^ (0x9E3779B97F4A7C15ULL * (index + 1));
    return Rng(splitmix64(sm));
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t s_[4];
};

}  // namespace nat::util
