// Minimal buffered std::streambuf over a POSIX file descriptor, used
// by the solver daemon to run its iostream-based serve() loop over a
// socket connection.
//
// Signal-hardened on purpose: JSONL framing dies if a record is
// truncated mid-line, and a plain read(2)/write(2) can
//
//  * return -1 with errno == EINTR when a signal lands between bytes
//    (handlers installed without SA_RESTART — as tests and some
//    supervisors do — make this routine, not exotic), and
//  * return a *short* write when the socket buffer fills up, which a
//    single-shot write would silently drop the tail of.
//
// Both loops below retry on EINTR and drain partial writes until the
// buffer is fully on the wire or a hard error occurs. A hard error
// (EPIPE after the peer vanished, ...) still surfaces as eof/-1 so the
// caller's stream goes bad instead of spinning.
#pragma once

#include <cerrno>
#include <streambuf>

#include <unistd.h>

namespace nat::util {

class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(ibuf_, ibuf_, ibuf_);
    setp(obuf_, obuf_ + sizeof(obuf_));
  }

 protected:
  int_type underflow() override {
    ssize_t n;
    do {
      n = ::read(fd_, ibuf_, sizeof(ibuf_));
    } while (n < 0 && errno == EINTR);
    if (n <= 0) return traits_type::eof();
    setg(ibuf_, ibuf_, ibuf_ + n);
    return traits_type::to_int_type(ibuf_[0]);
  }

  int_type overflow(int_type ch) override {
    if (!flush_buffer()) return traits_type::eof();
    if (!traits_type::eq_int_type(ch, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(ch);
      pbump(1);
    }
    return traits_type::not_eof(ch);
  }

  int sync() override { return flush_buffer() ? 0 : -1; }

 private:
  bool flush_buffer() {
    const ssize_t n = pptr() - pbase();
    ssize_t off = 0;
    while (off < n) {
      const ssize_t w = ::write(fd_, pbase() + off,
                                static_cast<std::size_t>(n - off));
      if (w < 0 && errno == EINTR) continue;  // retry the same span
      if (w <= 0) return false;               // hard error
      off += w;                               // may be a partial write
    }
    pbump(static_cast<int>(-n));
    return true;
  }

  int fd_;
  char ibuf_[4096];
  char obuf_[4096];
};

}  // namespace nat::util
