// Monotonic stopwatch for coarse per-phase timing in bench harnesses
// and for the wall-ns readings of obs/trace.hpp spans.
#pragma once

#include <chrono>
#include <cstdint>

namespace nat::util {

class Stopwatch {
 public:
  Stopwatch() : start_(clock::now()) {}

  void reset() { start_ = clock::now(); }

  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  double millis() const { return seconds() * 1e3; }

  std::int64_t nanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                                start_)
        .count();
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

}  // namespace nat::util
